#include "bgq/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "bgq/collectives.hpp"

namespace mthfx::bgq {

namespace {

std::uint64_t xorshift64(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

// Event-count cap: beyond this, chunks are aggregated so machine-scale
// workloads (10^9+ tasks) stay simulable. Sampling stays statistical —
// at most kMaxSamples draws represent a block, scaled to its true size —
// which preserves means and (approximately) the heavy tail.
constexpr std::int64_t kMaxEvents = 1'000'000;
constexpr std::int64_t kMaxSamples = 64;

struct BlockCost {
  double sum = 0.0;
  double max = 0.0;
};

BlockCost sample_block(const EmpiricalCostDistribution& costs,
                       std::uint64_t& rng, std::int64_t n) {
  BlockCost b;
  const std::int64_t draws = std::min(n, kMaxSamples);
  for (std::int64_t i = 0; i < draws; ++i) {
    const double s = costs.sample(rng);
    b.sum += s;
    b.max = std::max(b.max, s);
  }
  b.sum *= static_cast<double>(n) / static_cast<double>(draws);
  return b;
}

}  // namespace

EmpiricalCostDistribution::EmpiricalCostDistribution(std::vector<double> costs)
    : sorted_(std::move(costs)) {
  if (sorted_.empty())
    throw std::invalid_argument("EmpiricalCostDistribution: no samples");
  std::sort(sorted_.begin(), sorted_.end());
  double s = 0.0;
  for (double c : sorted_) s += c;
  mean_ = s / static_cast<double>(sorted_.size());
}

EmpiricalCostDistribution EmpiricalCostDistribution::from_records(
    const std::vector<hfx::TaskCostRecord>& records) {
  // Timer resolution on fast tasks can yield zero wall seconds; rescale
  // est_cost into the measured time scale for those.
  double total_secs = 0.0, total_est = 0.0;
  for (const auto& r : records) {
    total_secs += r.seconds;
    total_est += r.est_cost;
  }
  const double rate = (total_secs > 0.0 && total_est > 0.0)
                          ? total_secs / total_est
                          : 1e-9;
  std::vector<double> costs;
  costs.reserve(records.size());
  for (const auto& r : records)
    costs.push_back(r.seconds > 0.0 ? r.seconds : r.est_cost * rate);
  return EmpiricalCostDistribution(std::move(costs));
}

double EmpiricalCostDistribution::sample(std::uint64_t& rng_state) const {
  const std::uint64_t r = xorshift64(rng_state);
  return sorted_[static_cast<std::size_t>(r % sorted_.size())];
}

SimResult simulate_step(const MachineConfig& machine,
                        const SimWorkload& workload,
                        const EmpiricalCostDistribution& costs,
                        const SimOptions& options) {
  SimResult result;
  result.threads = machine.num_threads();
  const auto nodes = machine.num_nodes();
  const double node_rate =
      machine.thread_rate * static_cast<double>(kThreadsPerNode);
  std::uint64_t rng = options.seed;

  if (options.scheme == SimScheme::kDynamicHierarchical) {
    // Chunk-level greedy assignment to the earliest-available node: the
    // behaviour of a distributed bag with per-node 64-thread pools.
    // Beyond kMaxEvents chunks, consecutive chunks are aggregated into
    // one event (statistically equivalent for i.i.d. task costs).
    std::int64_t chunk = std::max<std::int64_t>(1, options.tasks_per_fetch);
    std::int64_t num_chunks = (workload.num_tasks + chunk - 1) / chunk;
    if (num_chunks > kMaxEvents) {
      const std::int64_t agg = (num_chunks + kMaxEvents - 1) / kMaxEvents;
      chunk *= agg;
      num_chunks = (workload.num_tasks + chunk - 1) / chunk;
    }
    const double fetch = work_fetch_seconds(
        machine, std::min<std::int64_t>(nodes, num_chunks));

    // Min-heap of node available-times (only nodes that receive work).
    const std::int64_t active =
        std::min<std::int64_t>(nodes, std::max<std::int64_t>(1, num_chunks));
    std::priority_queue<double, std::vector<double>, std::greater<>> heap;
    for (std::int64_t n = 0; n < active; ++n) heap.push(0.0);

    double busy_total = 0.0;
    double makespan = 0.0;
    double max_task = 0.0;
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      const std::int64_t in_chunk =
          std::min<std::int64_t>(chunk, workload.num_tasks - c * chunk);
      const BlockCost bc = sample_block(costs, rng, in_chunk);
      max_task = std::max(max_task, bc.max);
      // Service time on a 64-thread node with intra-node dynamic
      // sharing: the chunk drains at node rate (long tasks overlap other
      // work; the one-task-per-thread floor is applied once, globally,
      // below as the tail correction).
      const double service =
          bc.sum / node_rate + fetch +
          static_cast<double>(in_chunk) * machine.atomic_fetch /
              static_cast<double>(kThreadsPerNode);
      const double start = heap.top();
      heap.pop();
      const double finish = start + service;
      heap.push(finish);
      busy_total += service;
      makespan = std::max(makespan, finish);
    }
    result.compute_seconds = makespan;
    result.mean_compute_seconds =
        busy_total / static_cast<double>(active);
    // Tail correction: the last tasks drain through each node's 64
    // threads, leaving at most one task per thread of residual skew.
    result.compute_seconds += max_task / machine.thread_rate;

    const double reduction =
        distributed_reduce_seconds(machine, workload.reduction_bytes);
    result.comm_seconds =
        reduction + fetch * static_cast<double>(num_chunks) /
                        static_cast<double>(std::max<std::int64_t>(1, active));
    result.makespan_seconds = result.compute_seconds + reduction;
  } else {
    // Static block-cyclic over *threads* without cost knowledge.
    const std::int64_t threads = machine.num_threads();
    const std::int64_t chunk =
        std::max<std::int64_t>(1, options.tasks_per_fetch);
    const std::int64_t num_chunks = (workload.num_tasks + chunk - 1) / chunk;

    if (num_chunks <= kMaxEvents) {
      // Exact per-chunk assignment: chunk c goes to thread c mod N.
      std::vector<double> load(static_cast<std::size_t>(std::min<std::int64_t>(
          threads, std::max<std::int64_t>(1, num_chunks))));
      for (std::int64_t c = 0; c < num_chunks; ++c) {
        const std::int64_t in_chunk =
            std::min<std::int64_t>(chunk, workload.num_tasks - c * chunk);
        load[static_cast<std::size_t>(
            c % static_cast<std::int64_t>(load.size()))] +=
            sample_block(costs, rng, in_chunk).sum / machine.thread_rate;
      }
      double mx = 0.0, total = 0.0;
      for (double l : load) {
        mx = std::max(mx, l);
        total += l;
      }
      result.compute_seconds = mx;
      result.mean_compute_seconds = total / static_cast<double>(threads);
    } else {
      // Machine-scale path: thread loads are sums of many i.i.d. task
      // costs, so the busiest of N threads follows extreme-value
      // statistics: max ~ mean + std * sqrt(2 ln N). Moments come from a
      // large sample; the single-task max floors the estimate (a thread
      // that drew the heaviest task cannot finish before it).
      const std::int64_t probe = 100'000;
      double m1 = 0.0, m2 = 0.0, mx_task = 0.0;
      for (std::int64_t i = 0; i < probe; ++i) {
        const double s = costs.sample(rng);
        m1 += s;
        m2 += s * s;
        mx_task = std::max(mx_task, s);
      }
      m1 /= static_cast<double>(probe);
      m2 /= static_cast<double>(probe);
      const double task_std = std::sqrt(std::max(0.0, m2 - m1 * m1));
      const double tpt = static_cast<double>(workload.num_tasks) /
                         static_cast<double>(threads);
      const double load_mean = m1 * tpt;
      const double load_std = task_std * std::sqrt(std::max(1.0, tpt));
      const double evt =
          load_mean +
          load_std * std::sqrt(2.0 * std::log(static_cast<double>(threads)));
      result.compute_seconds =
          std::max(evt, load_mean + mx_task) / machine.thread_rate;
      result.mean_compute_seconds = load_mean / machine.thread_rate;
    }

    const double reduction =
        replicated_allreduce_seconds(machine, workload.reduction_bytes);
    result.comm_seconds = reduction;
    result.makespan_seconds = result.compute_seconds + reduction;
  }

  result.imbalance = result.mean_compute_seconds > 0.0
                         ? result.compute_seconds / result.mean_compute_seconds
                         : 1.0;
  return result;
}

obs::Json to_json(const SimResult& result) {
  obs::Json out = obs::Json::object();
  out["threads"] = result.threads;
  out["makespan_seconds"] = result.makespan_seconds;
  out["compute_seconds"] = result.compute_seconds;
  out["mean_compute_seconds"] = result.mean_compute_seconds;
  out["comm_seconds"] = result.comm_seconds;
  out["comm_fraction"] = result.makespan_seconds > 0.0
                             ? result.comm_seconds / result.makespan_seconds
                             : 0.0;
  out["imbalance"] = result.imbalance;
  return out;
}

double parallel_efficiency(const SimResult& base, const SimResult& scaled) {
  const double work_base =
      base.makespan_seconds * static_cast<double>(base.threads);
  const double work_scaled =
      scaled.makespan_seconds * static_cast<double>(scaled.threads);
  return work_scaled > 0.0 ? work_base / work_scaled : 0.0;
}

}  // namespace mthfx::bgq
