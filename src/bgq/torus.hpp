#pragma once

// 5-D torus geometry: node <-> coordinate mapping, wraparound hop metric,
// diameter. Used by the collective cost models and the locality-aware
// work-distribution analysis.

#include <cstdint>

#include "bgq/machine.hpp"

namespace mthfx::bgq {

struct TorusCoord {
  std::array<int, 5> c{};
  friend bool operator==(const TorusCoord&, const TorusCoord&) = default;
};

/// Coordinates of node `index` (row-major over the shape).
TorusCoord torus_coord(const TorusShape& shape, std::int64_t index);

/// Inverse of torus_coord.
std::int64_t torus_index(const TorusShape& shape, const TorusCoord& coord);

/// Minimal hop count between two nodes with wraparound links.
int torus_hops(const TorusShape& shape, const TorusCoord& a,
               const TorusCoord& b);

/// Maximum over node pairs of torus_hops = sum of floor(dim/2).
int torus_diameter(const TorusShape& shape);

/// Number of nearest-neighbor links per node (2 per dimension with
/// extent > 1, 1 for extent 2 counted once, i.e. min(2, dim-1) ... BG/Q
/// uses 10 links; dimensions of extent 2 still have two physical links).
int links_per_node(const TorusShape& shape);

}  // namespace mthfx::bgq
