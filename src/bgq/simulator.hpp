#pragma once

// Discrete-event simulation of one HFX build step at BG/Q machine scale.
//
// The host run supplies *measured* per-task kernel costs (see
// HfxOptions::record_task_costs); this simulator replays a (scaled)
// condensed-phase task population against the machine model and the two
// execution schemes the paper compares:
//
//   * kDynamicHierarchical — the paper's scheme: chunks of quartet tasks
//     fetched from a distributed bag by nodes, processed by each node's
//     64-thread dynamic pool, partial K matrices combined with a
//     pipelined tree allreduce on the torus.
//   * kStaticBlockCyclic — the "directly comparable approach": quartet
//     chunks preassigned round-robin without cost knowledge, replicated
//     result matrices combined with a flat (serialized) reduction.

#include <cstdint>
#include <vector>

#include "bgq/machine.hpp"
#include "hfx/fock_builder.hpp"
#include "obs/json.hpp"

namespace mthfx::bgq {

/// Inverse-CDF sampler over an empirical set of per-task costs (seconds
/// of one host thread).
class EmpiricalCostDistribution {
 public:
  explicit EmpiricalCostDistribution(std::vector<double> costs);

  /// Build from measured HFX task records (uses wall seconds; falls back
  /// to normalized est_cost when a record was not timed).
  static EmpiricalCostDistribution from_records(
      const std::vector<hfx::TaskCostRecord>& records);

  double sample(std::uint64_t& rng_state) const;
  double mean() const { return mean_; }
  double max() const { return sorted_.back(); }
  std::size_t support_size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

enum class SimScheme { kDynamicHierarchical, kStaticBlockCyclic };

struct SimWorkload {
  std::int64_t num_tasks = 0;        ///< quartet tasks in the full system
  std::int64_t reduction_bytes = 0;  ///< size of the K matrix to allreduce
};

struct SimOptions {
  SimScheme scheme = SimScheme::kDynamicHierarchical;
  std::int64_t tasks_per_fetch = 16;  ///< chunk size for the distributed bag
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  // Failure model. Each node independently draws its fate from
  // (seed, node id) — the *same* draws for both schemes, so a
  // dynamic-vs-static comparison sees identical fault patterns. A failed
  // node completes a deterministic fraction of its work and dies; a
  // straggler runs `straggler_slowdown`x slower for the whole step. The
  // dynamic scheme redistributes a dead node's in-flight chunk to the
  // earliest-available survivor; the static scheme has no rebalancing,
  // so the dead node's block is redone from scratch after detection and
  // the whole step stalls behind it.
  double node_failure_rate = 0.0;   ///< P(node dies mid-step)
  double straggler_rate = 0.0;      ///< P(node is a straggler)
  double straggler_slowdown = 4.0;  ///< service-time multiplier
  double failure_detection_seconds = 0.01;  ///< per-failure recovery cost
};

struct SimResult {
  double makespan_seconds = 0.0;     ///< full step including reduction
  double compute_seconds = 0.0;      ///< busiest executor's kernel time
  double mean_compute_seconds = 0.0; ///< average executor kernel time
  double comm_seconds = 0.0;         ///< reduction + work-fetch overhead
  double imbalance = 1.0;            ///< compute / mean_compute
  std::int64_t threads = 0;
  std::int64_t failed_nodes = 0;     ///< nodes that died mid-step
  std::int64_t straggler_nodes = 0;  ///< nodes running degraded
  double lost_compute_seconds = 0.0; ///< work discarded at node deaths
  double recovery_seconds = 0.0;     ///< detection + re-dispatch overhead
};

/// Simulate one exchange-build step.
SimResult simulate_step(const MachineConfig& machine,
                        const SimWorkload& workload,
                        const EmpiricalCostDistribution& costs,
                        const SimOptions& options = {});

/// Strong-scaling parallel efficiency of `scaled` against `base`:
/// (T_base * N_base) / (T_scaled * N_scaled).
double parallel_efficiency(const SimResult& base, const SimResult& scaled);

/// Modeled comm-vs-compute decomposition of one simulated step as a JSON
/// record (the shape consumed by the BENCH_*.json emitters).
obs::Json to_json(const SimResult& result);

}  // namespace mthfx::bgq
