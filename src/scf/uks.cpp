#include "scf/uks.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "dft/spin_functionals.hpp"
#include "dft/xc_integrator.hpp"
#include "ints/one_electron.hpp"
#include "linalg/diis.hpp"
#include "linalg/eigen.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"

namespace mthfx::scf {

using linalg::Matrix;

namespace {

struct SpinState {
  Matrix c;
  linalg::Vector eps;
  Matrix p;
};

SpinState solve_channel(const Matrix& f, const Matrix& x, std::size_t nocc) {
  const Matrix fprime =
      linalg::matmul(linalg::matmul(linalg::transpose(x), f), x);
  const auto eig = linalg::eigh(fprime);
  SpinState out;
  out.c = linalg::matmul(x, eig.vectors);
  out.eps = eig.values;
  const std::size_t n = out.c.rows();
  out.p = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double v = 0.0;
      for (std::size_t o = 0; o < nocc; ++o) v += out.c(i, o) * out.c(j, o);
      out.p(i, j) = v;
    }
  return out;
}

}  // namespace

UksResult uks(const chem::Molecule& mol, const chem::BasisSet& basis,
              int multiplicity, const UksOptions& options) {
  const obs::Trace::Scope scf_span(obs::global_trace(), "scf.uks");
  const int nelec = mol.num_electrons();
  const int nopen = multiplicity - 1;
  if (nopen < 0 || (nelec - nopen) % 2 != 0 || nelec < nopen)
    throw std::invalid_argument(
        "uks: electron count inconsistent with multiplicity");
  const auto nb = static_cast<std::size_t>((nelec - nopen) / 2);
  const auto na = nb + static_cast<std::size_t>(nopen);

  const dft::SpinFunctional functional =
      dft::make_spin_functional(options.functional);
  const double ax = functional.exact_exchange;
  const bool semilocal = options.functional != "hf";

  const Matrix s = ints::overlap(basis);
  const Matrix x = linalg::inverse_sqrt(s);
  const Matrix h = ints::core_hamiltonian(basis, mol);
  const double enuc = mol.nuclear_repulsion();

  hfx::FockBuilder builder(basis, options.scf.hfx);

  std::unique_ptr<dft::MolecularGrid> grid;
  std::unique_ptr<dft::XcIntegrator> xc;
  if (semilocal) {
    grid = std::make_unique<dft::MolecularGrid>(mol, options.grid);
    // Basis-evaluation screening rides the same sparsity switch as
    // the culled pair list: on for systems routed to the blocked path.
    xc = std::make_unique<dft::XcIntegrator>(
        basis, *grid,
        options.scf.hfx.sparsity.blocked(basis.num_functions()));
  }

  SpinState a = solve_channel(h, x, na);
  SpinState b = solve_channel(h, x, nb);

  linalg::Diis diis_a, diis_b;
  RecoveryLadder ladder(options.scf.recovery);
  UksResult result;
  result.scf.nuclear_repulsion = enuc;
  double e_prev = 0.0;
  std::size_t start_iter = 0;

  if (options.scf.resume) {
    const fault::ScfCheckpoint& ckpt = *options.scf.resume;
    if (ckpt.method != "uks")
      throw std::invalid_argument("uks: checkpoint is for method '" +
                                  ckpt.method + "'");
    start_iter = ckpt.iteration;
    a.p = ckpt.density;
    b.p = ckpt.density_beta;
    e_prev = ckpt.energy;
    diis_a.restore_history(ckpt.diis_focks, ckpt.diis_errors);
    diis_b.restore_history(ckpt.diis_focks_beta, ckpt.diis_errors_beta);
  }

  Matrix last_good_pa = a.p, last_good_pb = b.p;
  double last_ek = 0.0, last_exc = 0.0, last_ndens = 0.0;
  std::size_t completed = start_iter;

  for (std::size_t iter = start_iter; iter < options.scf.max_iterations;
       ++iter) {
    if (options.scf.cancel) options.scf.cancel->check();
    const obs::Trace::Scope iter_span(obs::global_trace(), "scf.iteration");
    const obs::Stopwatch iter_watch;
    const auto jk_a = builder.coulomb_exchange(a.p);
    const auto jk_b = builder.coulomb_exchange(b.p);
    const Matrix j_total = jk_a.j + jk_b.j;

    dft::XcSpinResult xres;
    if (semilocal) xres = xc->integrate_spin(functional, a.p, b.p);

    Matrix fa = h + j_total;
    Matrix fb = h + j_total;
    if (ax != 0.0) {
      fa -= ax * jk_a.k;
      fb -= ax * jk_b.k;
    }
    if (semilocal) {
      fa += xres.v_alpha;
      fb += xres.v_beta;
    }

    const Matrix pt = a.p + b.p;
    const double e_core = linalg::trace_product(pt, h);
    const double e_j = 0.5 * linalg::trace_product(pt, j_total);
    const double e_k = -0.5 * ax * (linalg::trace_product(a.p, jk_a.k) +
                                    linalg::trace_product(b.p, jk_b.k));
    const double energy = e_core + e_j + e_k + xres.energy + enuc;

    auto err_for = [&](const Matrix& f, const Matrix& p) {
      const Matrix fps = linalg::matmul(linalg::matmul(f, p), s);
      return linalg::matmul(
          linalg::matmul(linalg::transpose(x), fps - linalg::transpose(fps)),
          x);
    };
    const Matrix ea = err_for(fa, a.p);
    const Matrix eb = err_for(fb, b.p);
    const double diis_err = std::max(linalg::max_abs(ea), linalg::max_abs(eb));
    const double delta_e = energy - e_prev;
    const bool finite = std::isfinite(energy) && std::isfinite(diis_err);

    ladder.observe(iter, energy, delta_e, diis_err);
    if (ladder.consume_diis_reset()) {
      diis_a.reset();
      diis_b.reset();
    }
    if (options.scf.use_diis && finite) {
      fa = diis_a.extrapolate(fa, ea);
      fb = diis_b.extrapolate(fb, eb);
    }

    ScfIterationLog log_entry;
    log_entry.energy = energy;
    log_entry.delta_e = delta_e;
    log_entry.diis_error = diis_err;
    log_entry.quartets_computed = jk_a.stats.screening.quartets_computed +
                                  jk_b.stats.screening.quartets_computed;
    log_entry.jk_seconds =
        jk_a.stats.wall_seconds + jk_b.stats.wall_seconds;
    log_entry.seconds = iter_watch.seconds();
    log_entry.recovery_stage = static_cast<std::uint32_t>(ladder.stage());
    result.scf.log.push_back(log_entry);
    completed = iter + 1;

    if (!finite) {
      result.scf.diagnostics.finite = false;
      if (ladder.exhausted()) {
        result.scf.diagnostics.failure_reason =
            "non-finite energy with recovery ladder exhausted";
        break;
      }
      a.p = last_good_pa;
      b.p = last_good_pb;
      continue;
    }
    last_good_pa = a.p;
    last_good_pb = b.p;
    last_ek = e_k;
    last_exc = xres.energy;
    last_ndens = xres.integrated_density;

    const bool e_ok = iter > 0 && std::abs(energy - e_prev) <
                                      options.scf.energy_tolerance;
    const bool d_ok = diis_err < options.scf.diis_tolerance;
    e_prev = energy;

    if (e_ok && d_ok) {
      result.scf.converged = true;
      result.scf.energy = energy;
      result.scf.iterations = iter + 1;
      result.scf.density_alpha = a.p;
      result.scf.density_beta = b.p;
      result.scf.coefficients_alpha = a.c;
      result.scf.coefficients_beta = b.c;
      result.scf.orbital_energies_alpha = a.eps;
      result.scf.orbital_energies_beta = b.eps;
      result.xc_energy = xres.energy;
      result.exact_exchange_energy = e_k;
      result.integrated_density = xres.integrated_density;
      result.scf.diagnostics.final_stage = ladder.stage();
      result.scf.diagnostics.recovery_events = ladder.events();
      return result;
    }

    const double shift =
        std::max(options.scf.level_shift, ladder.level_shift());
    if (shift > 0.0) {
      const Matrix spa = linalg::matmul(linalg::matmul(s, a.p), s);
      const Matrix spb = linalg::matmul(linalg::matmul(s, b.p), s);
      fa += shift * (s - spa);
      fb += shift * (s - spb);
    }
    const Matrix pa_old = a.p;
    const Matrix pb_old = b.p;
    a = solve_channel(fa, x, na);
    b = solve_channel(fb, x, nb);
    const double configured_damping =
        options.scf.density_damping > 0.0 &&
                diis_err > options.scf.damping_until
            ? options.scf.density_damping
            : 0.0;
    const double d = std::max(configured_damping, ladder.damping());
    if (d > 0.0) {
      a.p = (1.0 - d) * a.p + d * pa_old;
      b.p = (1.0 - d) * b.p + d * pb_old;
    }

    if (options.scf.checkpoint_sink && options.scf.checkpoint_every > 0 &&
        (iter + 1) % options.scf.checkpoint_every == 0) {
      fault::ScfCheckpoint ckpt;
      ckpt.method = "uks";
      ckpt.iteration = iter + 1;
      ckpt.energy = e_prev;
      ckpt.density = a.p;
      ckpt.density_beta = b.p;
      const auto copy = [](const auto& history) {
        return std::vector<Matrix>(history.begin(), history.end());
      };
      ckpt.diis_focks = copy(diis_a.fock_history());
      ckpt.diis_errors = copy(diis_a.error_history());
      ckpt.diis_focks_beta = copy(diis_b.fock_history());
      ckpt.diis_errors_beta = copy(diis_b.error_history());
      options.scf.checkpoint_sink(ckpt);
    }
  }

  result.scf.converged = false;
  result.scf.energy = e_prev;
  result.scf.iterations = completed;
  result.scf.density_alpha = a.p;
  result.scf.density_beta = b.p;
  result.scf.coefficients_alpha = a.c;
  result.scf.coefficients_beta = b.c;
  result.scf.orbital_energies_alpha = a.eps;
  result.scf.orbital_energies_beta = b.eps;
  result.xc_energy = last_exc;
  result.exact_exchange_energy = last_ek;
  result.integrated_density = last_ndens;
  result.scf.diagnostics.final_stage = ladder.stage();
  result.scf.diagnostics.recovery_events = ladder.events();
  return result;
}

}  // namespace mthfx::scf
