#include "scf/uks.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "dft/spin_functionals.hpp"
#include "dft/xc_integrator.hpp"
#include "ints/one_electron.hpp"
#include "linalg/diis.hpp"
#include "linalg/eigen.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"

namespace mthfx::scf {

using linalg::Matrix;

namespace {

struct SpinState {
  Matrix c;
  linalg::Vector eps;
  Matrix p;
};

SpinState solve_channel(const Matrix& f, const Matrix& x, std::size_t nocc) {
  const Matrix fprime =
      linalg::matmul(linalg::matmul(linalg::transpose(x), f), x);
  const auto eig = linalg::eigh(fprime);
  SpinState out;
  out.c = linalg::matmul(x, eig.vectors);
  out.eps = eig.values;
  const std::size_t n = out.c.rows();
  out.p = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double v = 0.0;
      for (std::size_t o = 0; o < nocc; ++o) v += out.c(i, o) * out.c(j, o);
      out.p(i, j) = v;
    }
  return out;
}

}  // namespace

UksResult uks(const chem::Molecule& mol, const chem::BasisSet& basis,
              int multiplicity, const UksOptions& options) {
  const obs::Trace::Scope scf_span(obs::global_trace(), "scf.uks");
  const int nelec = mol.num_electrons();
  const int nopen = multiplicity - 1;
  if (nopen < 0 || (nelec - nopen) % 2 != 0 || nelec < nopen)
    throw std::invalid_argument(
        "uks: electron count inconsistent with multiplicity");
  const auto nb = static_cast<std::size_t>((nelec - nopen) / 2);
  const auto na = nb + static_cast<std::size_t>(nopen);

  const dft::SpinFunctional functional =
      dft::make_spin_functional(options.functional);
  const double ax = functional.exact_exchange;
  const bool semilocal = options.functional != "hf";

  const Matrix s = ints::overlap(basis);
  const Matrix x = linalg::inverse_sqrt(s);
  const Matrix h = ints::core_hamiltonian(basis, mol);
  const double enuc = mol.nuclear_repulsion();

  hfx::FockBuilder builder(basis, options.scf.hfx);

  std::unique_ptr<dft::MolecularGrid> grid;
  std::unique_ptr<dft::XcIntegrator> xc;
  if (semilocal) {
    grid = std::make_unique<dft::MolecularGrid>(mol, options.grid);
    xc = std::make_unique<dft::XcIntegrator>(basis, *grid);
  }

  SpinState a = solve_channel(h, x, na);
  SpinState b = solve_channel(h, x, nb);

  linalg::Diis diis_a, diis_b;
  UksResult result;
  result.scf.nuclear_repulsion = enuc;
  double e_prev = 0.0;

  for (std::size_t iter = 0; iter < options.scf.max_iterations; ++iter) {
    const obs::Trace::Scope iter_span(obs::global_trace(), "scf.iteration");
    const obs::Stopwatch iter_watch;
    const auto jk_a = builder.coulomb_exchange(a.p);
    const auto jk_b = builder.coulomb_exchange(b.p);
    const Matrix j_total = jk_a.j + jk_b.j;

    dft::XcSpinResult xres;
    if (semilocal) xres = xc->integrate_spin(functional, a.p, b.p);

    Matrix fa = h + j_total;
    Matrix fb = h + j_total;
    if (ax != 0.0) {
      fa -= ax * jk_a.k;
      fb -= ax * jk_b.k;
    }
    if (semilocal) {
      fa += xres.v_alpha;
      fb += xres.v_beta;
    }

    const Matrix pt = a.p + b.p;
    const double e_core = linalg::trace_product(pt, h);
    const double e_j = 0.5 * linalg::trace_product(pt, j_total);
    const double e_k = -0.5 * ax * (linalg::trace_product(a.p, jk_a.k) +
                                    linalg::trace_product(b.p, jk_b.k));
    const double energy = e_core + e_j + e_k + xres.energy + enuc;

    auto err_for = [&](const Matrix& f, const Matrix& p) {
      const Matrix fps = linalg::matmul(linalg::matmul(f, p), s);
      return linalg::matmul(
          linalg::matmul(linalg::transpose(x), fps - linalg::transpose(fps)),
          x);
    };
    const Matrix ea = err_for(fa, a.p);
    const Matrix eb = err_for(fb, b.p);
    if (options.scf.use_diis) {
      fa = diis_a.extrapolate(fa, ea);
      fb = diis_b.extrapolate(fb, eb);
    }
    const double diis_err = std::max(linalg::max_abs(ea), linalg::max_abs(eb));

    ScfIterationLog log_entry;
    log_entry.energy = energy;
    log_entry.delta_e = energy - e_prev;
    log_entry.diis_error = diis_err;
    log_entry.quartets_computed = jk_a.stats.screening.quartets_computed +
                                  jk_b.stats.screening.quartets_computed;
    log_entry.jk_seconds =
        jk_a.stats.wall_seconds + jk_b.stats.wall_seconds;
    log_entry.seconds = iter_watch.seconds();
    result.scf.log.push_back(log_entry);

    const bool e_ok = iter > 0 && std::abs(energy - e_prev) <
                                      options.scf.energy_tolerance;
    const bool d_ok = diis_err < options.scf.diis_tolerance;
    e_prev = energy;

    if (e_ok && d_ok) {
      result.scf.converged = true;
      result.scf.energy = energy;
      result.scf.iterations = iter + 1;
      result.scf.density_alpha = a.p;
      result.scf.density_beta = b.p;
      result.scf.coefficients_alpha = a.c;
      result.scf.coefficients_beta = b.c;
      result.scf.orbital_energies_alpha = a.eps;
      result.scf.orbital_energies_beta = b.eps;
      result.xc_energy = xres.energy;
      result.exact_exchange_energy = e_k;
      result.integrated_density = xres.integrated_density;
      return result;
    }

    if (options.scf.level_shift > 0.0) {
      const Matrix spa = linalg::matmul(linalg::matmul(s, a.p), s);
      const Matrix spb = linalg::matmul(linalg::matmul(s, b.p), s);
      fa += options.scf.level_shift * (s - spa);
      fb += options.scf.level_shift * (s - spb);
    }
    const Matrix pa_old = a.p;
    const Matrix pb_old = b.p;
    a = solve_channel(fa, x, na);
    b = solve_channel(fb, x, nb);
    if (options.scf.density_damping > 0.0 &&
        diis_err > options.scf.damping_until) {
      const double d = options.scf.density_damping;
      a.p = (1.0 - d) * a.p + d * pa_old;
      b.p = (1.0 - d) * b.p + d * pb_old;
    }
  }

  result.scf.converged = false;
  result.scf.energy = e_prev;
  result.scf.iterations = options.scf.max_iterations;
  result.scf.density_alpha = a.p;
  result.scf.density_beta = b.p;
  return result;
}

}  // namespace mthfx::scf
