#pragma once

// Unrestricted Kohn–Sham SCF: spin-polarized LDA/PBE/PBE0 for the
// open-shell Li/air species (neutral LiO2, superoxide radicals). The
// hybrid path exercises the same HFX builder per spin channel.

#include "dft/grid.hpp"
#include "scf/uhf.hpp"

namespace mthfx::scf {

struct UksOptions {
  UhfOptions scf;              ///< convergence / HFX / damping settings
  dft::GridOptions grid;
  std::string functional = "pbe0";
};

struct UksResult {
  UhfResult scf;               ///< energies, spin densities, orbitals
  double xc_energy = 0.0;
  double exact_exchange_energy = 0.0;
  double integrated_density = 0.0;
};

/// Run spin-polarized Kohn–Sham with `multiplicity` = 2S+1.
/// ("hf" reduces to UHF.)
UksResult uks(const chem::Molecule& mol, const chem::BasisSet& basis,
              int multiplicity, const UksOptions& options = {});

}  // namespace mthfx::scf
