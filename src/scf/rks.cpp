#include "scf/rks.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "dft/xc_integrator.hpp"
#include "ints/one_electron.hpp"
#include "linalg/diis.hpp"
#include "linalg/eigen.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"
#include "scf/guess.hpp"

namespace mthfx::scf {

using linalg::Matrix;

KsResult rks(const chem::Molecule& mol, const chem::BasisSet& basis,
             const KsOptions& options) {
  const obs::Trace::Scope scf_span(obs::global_trace(), "scf.rks");
  const int nelec = mol.num_electrons();
  if (nelec % 2 != 0)
    throw std::invalid_argument("rks: closed-shell SCF needs even electrons");
  const auto nocc = static_cast<std::size_t>(nelec / 2);

  const dft::Functional functional = dft::make_functional(options.functional);
  const double ax = functional.exact_exchange;
  const bool semilocal = options.functional != "hf";

  const Matrix s = ints::overlap(basis);
  const Matrix x = linalg::inverse_sqrt(s);
  const Matrix h = ints::core_hamiltonian(basis, mol);
  const double enuc = mol.nuclear_repulsion();

  hfx::FockBuilder builder(basis, options.scf.hfx);

  // The grid is only needed for functionals with a semilocal part.
  std::unique_ptr<dft::MolecularGrid> grid;
  std::unique_ptr<dft::XcIntegrator> xc;
  if (semilocal) {
    grid = std::make_unique<dft::MolecularGrid>(mol, options.grid);
    xc = std::make_unique<dft::XcIntegrator>(basis, *grid);
  }

  Matrix p = core_guess_density(basis, mol, x);
  linalg::Diis diis;

  KsResult result;
  result.scf.nuclear_repulsion = enuc;
  double e_prev = 0.0;

  for (std::size_t iter = 0; iter < options.scf.max_iterations; ++iter) {
    const obs::Trace::Scope iter_span(obs::global_trace(), "scf.iteration");
    const obs::Stopwatch iter_watch;
    const auto jk = builder.coulomb_exchange(p);

    dft::XcResult xres;
    if (semilocal) xres = xc->integrate(functional, p);

    Matrix f = h + jk.j;
    if (ax != 0.0) f -= (0.5 * ax) * jk.k;
    if (semilocal) f += xres.v;

    const double e1 = linalg::trace_product(p, h);
    const double ej = 0.5 * linalg::trace_product(p, jk.j);
    const double ek = -0.25 * ax * linalg::trace_product(p, jk.k);
    const double energy = e1 + ej + ek + xres.energy + enuc;

    const Matrix fps = linalg::matmul(linalg::matmul(f, p), s);
    const Matrix err = linalg::matmul(
        linalg::matmul(linalg::transpose(x), fps - linalg::transpose(fps)), x);
    if (options.scf.use_diis) f = diis.extrapolate(f, err);

    ScfIterationLog log_entry;
    log_entry.energy = energy;
    log_entry.delta_e = energy - e_prev;
    log_entry.diis_error = linalg::max_abs(err);
    log_entry.quartets_computed = jk.stats.screening.quartets_computed;
    log_entry.jk_seconds = jk.stats.wall_seconds;
    log_entry.seconds = iter_watch.seconds();
    result.scf.log.push_back(log_entry);

    const bool e_ok =
        iter > 0 && std::abs(energy - e_prev) < options.scf.energy_tolerance;
    const bool d_ok = log_entry.diis_error < options.scf.diis_tolerance;
    e_prev = energy;

    if (e_ok && d_ok) {
      result.scf.converged = true;
      result.scf.energy = energy;
      result.scf.one_electron_energy = e1;
      result.scf.coulomb_energy = ej;
      result.scf.exchange_energy = ek;
      result.scf.iterations = iter + 1;
      result.scf.density = p;
      result.xc_energy = xres.energy;
      result.exact_exchange_energy = ek;
      result.integrated_density = xres.integrated_density;
      const auto sol = solve_orbitals(f, x, nocc);
      result.scf.coefficients = sol.coefficients;
      result.scf.orbital_energies = sol.orbital_energies;
      return result;
    }

    const auto sol = solve_orbitals(f, x, nocc);
    p = sol.density;
    result.scf.coefficients = sol.coefficients;
    result.scf.orbital_energies = sol.orbital_energies;
  }

  result.scf.converged = false;
  result.scf.energy = e_prev;
  result.scf.iterations = options.scf.max_iterations;
  result.scf.density = p;
  return result;
}

}  // namespace mthfx::scf
