#include "scf/rks.hpp"

#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "dft/xc_integrator.hpp"
#include "ints/one_electron.hpp"
#include "linalg/diis.hpp"
#include "linalg/eigen.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"
#include "scf/guess.hpp"

namespace mthfx::scf {

using linalg::Matrix;

KsResult rks(const chem::Molecule& mol, const chem::BasisSet& basis,
             const KsOptions& options) {
  const obs::Trace::Scope scf_span(obs::global_trace(), "scf.rks");
  const int nelec = mol.num_electrons();
  if (nelec % 2 != 0)
    throw std::invalid_argument("rks: closed-shell SCF needs even electrons");
  const auto nocc = static_cast<std::size_t>(nelec / 2);

  const dft::Functional functional = dft::make_functional(options.functional);
  const double ax = functional.exact_exchange;
  const bool semilocal = options.functional != "hf";

  const Matrix s = ints::overlap(basis);
  const Matrix x = linalg::inverse_sqrt(s);
  const Matrix h = ints::core_hamiltonian(basis, mol);
  const double enuc = mol.nuclear_repulsion();

  std::optional<hfx::FockBuilder> own_builder;
  if (options.scf.shared_builder &&
      &options.scf.shared_builder->basis() != &basis)
    throw std::invalid_argument(
        "rks: shared_builder is bound to a different basis object");
  if (!options.scf.shared_builder) own_builder.emplace(basis, options.scf.hfx);
  const hfx::FockBuilder& builder =
      options.scf.shared_builder ? *options.scf.shared_builder : *own_builder;

  // The grid is only needed for functionals with a semilocal part.
  std::unique_ptr<dft::MolecularGrid> grid;
  std::unique_ptr<dft::XcIntegrator> xc;
  if (semilocal) {
    grid = std::make_unique<dft::MolecularGrid>(mol, options.grid);
    // Basis-evaluation screening rides the same sparsity switch as
    // the culled pair list: on for systems routed to the blocked path.
    xc = std::make_unique<dft::XcIntegrator>(
        basis, *grid,
        options.scf.hfx.sparsity.blocked(basis.num_functions()));
  }

  Matrix p = initial_scf_density(basis, mol, x, options.scf, "rks");
  linalg::Diis diis;
  RecoveryLadder ladder(options.scf.recovery);

  KsResult result;
  result.scf.nuclear_repulsion = enuc;
  double e_prev = 0.0;
  std::size_t start_iter = 0;

  if (options.scf.resume) {
    const fault::ScfCheckpoint& ckpt = *options.scf.resume;
    if (ckpt.method != "rks")
      throw std::invalid_argument("rks: checkpoint is for method '" +
                                  ckpt.method + "'");
    start_iter = ckpt.iteration;
    p = ckpt.density;
    e_prev = ckpt.energy;
    diis.restore_history(ckpt.diis_focks, ckpt.diis_errors);
  }

  Matrix last_good_p = p;
  double last_e1 = 0.0, last_ej = 0.0, last_ek = 0.0;
  double last_exc = 0.0, last_ndens = 0.0;
  std::size_t completed = start_iter;

  for (std::size_t iter = start_iter; iter < options.scf.max_iterations;
       ++iter) {
    if (options.scf.cancel) options.scf.cancel->check();
    const obs::Trace::Scope iter_span(obs::global_trace(), "scf.iteration");
    const obs::Stopwatch iter_watch;
    const auto jk = builder.coulomb_exchange(p);

    dft::XcResult xres;
    if (semilocal) xres = xc->integrate(functional, p);

    Matrix f = h + jk.j;
    if (ax != 0.0) f -= (0.5 * ax) * jk.k;
    if (semilocal) f += xres.v;

    const double e1 = linalg::trace_product(p, h);
    const double ej = 0.5 * linalg::trace_product(p, jk.j);
    const double ek = -0.25 * ax * linalg::trace_product(p, jk.k);
    const double energy = e1 + ej + ek + xres.energy + enuc;

    const Matrix fps = linalg::matmul(linalg::matmul(f, p), s);
    const Matrix err = linalg::matmul(
        linalg::matmul(linalg::transpose(x), fps - linalg::transpose(fps)), x);
    const double diis_err_norm = linalg::max_abs(err);
    const double delta_e = energy - e_prev;
    const bool finite =
        std::isfinite(energy) && std::isfinite(diis_err_norm);

    ladder.observe(iter, energy, delta_e, diis_err_norm);
    if (ladder.consume_diis_reset()) diis.reset();
    if (options.scf.use_diis && finite) f = diis.extrapolate(f, err);

    ScfIterationLog log_entry;
    log_entry.energy = energy;
    log_entry.delta_e = delta_e;
    log_entry.diis_error = diis_err_norm;
    log_entry.quartets_computed = jk.stats.screening.quartets_computed;
    log_entry.jk_seconds = jk.stats.wall_seconds;
    log_entry.seconds = iter_watch.seconds();
    log_entry.recovery_stage = static_cast<std::uint32_t>(ladder.stage());
    result.scf.log.push_back(log_entry);
    completed = iter + 1;

    if (!finite) {
      result.scf.diagnostics.finite = false;
      if (ladder.exhausted()) {
        result.scf.diagnostics.failure_reason =
            "non-finite energy with recovery ladder exhausted";
        break;
      }
      p = last_good_p;
      continue;
    }
    last_good_p = p;
    last_e1 = e1;
    last_ej = ej;
    last_ek = ek;
    last_exc = xres.energy;
    last_ndens = xres.integrated_density;

    const bool e_ok =
        iter > 0 && std::abs(energy - e_prev) < options.scf.energy_tolerance;
    const bool d_ok = diis_err_norm < options.scf.diis_tolerance;
    e_prev = energy;

    if (e_ok && d_ok) {
      result.scf.converged = true;
      result.scf.energy = energy;
      result.scf.one_electron_energy = e1;
      result.scf.coulomb_energy = ej;
      result.scf.exchange_energy = ek;
      result.scf.iterations = iter + 1;
      result.scf.density = p;
      result.scf.diagnostics.final_stage = ladder.stage();
      result.scf.diagnostics.recovery_events = ladder.events();
      result.xc_energy = xres.energy;
      result.exact_exchange_energy = ek;
      result.integrated_density = xres.integrated_density;
      const auto sol = solve_orbitals(f, x, nocc);
      result.scf.coefficients = sol.coefficients;
      result.scf.orbital_energies = sol.orbital_energies;
      return result;
    }

    const double shift = ladder.level_shift();
    if (shift > 0.0) {
      const Matrix sps = linalg::matmul(linalg::matmul(s, p), s);
      f += shift * (s - sps);
    }
    const auto sol = solve_orbitals(f, x, nocc);
    const double damping = ladder.damping();
    p = damping > 0.0 ? (1.0 - damping) * sol.density + damping * p
                      : sol.density;
    result.scf.coefficients = sol.coefficients;
    result.scf.orbital_energies = sol.orbital_energies;

    if (options.scf.checkpoint_sink && options.scf.checkpoint_every > 0 &&
        (iter + 1) % options.scf.checkpoint_every == 0) {
      fault::ScfCheckpoint ckpt;
      ckpt.method = "rks";
      ckpt.iteration = iter + 1;
      ckpt.energy = e_prev;
      ckpt.density = p;
      ckpt.diis_focks = std::vector<Matrix>(diis.fock_history().begin(),
                                            diis.fock_history().end());
      ckpt.diis_errors = std::vector<Matrix>(diis.error_history().begin(),
                                             diis.error_history().end());
      options.scf.checkpoint_sink(ckpt);
    }
  }

  result.scf.converged = false;
  result.scf.energy = e_prev;
  result.scf.one_electron_energy = last_e1;
  result.scf.coulomb_energy = last_ej;
  result.scf.exchange_energy = last_ek;
  result.scf.iterations = completed;
  result.scf.density = p;
  result.scf.diagnostics.final_stage = ladder.stage();
  result.scf.diagnostics.recovery_events = ladder.events();
  result.xc_energy = last_exc;
  result.exact_exchange_energy = last_ek;
  result.integrated_density = last_ndens;
  return result;
}

}  // namespace mthfx::scf
