#include "scf/rhf.hpp"

#include <cmath>
#include <stdexcept>

#include "ints/one_electron.hpp"
#include "linalg/diis.hpp"
#include "linalg/eigen.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"
#include "scf/guess.hpp"

namespace mthfx::scf {

using linalg::Matrix;

obs::Json scf_log_to_json(const std::vector<ScfIterationLog>& log) {
  obs::Json rows = obs::Json::array();
  for (std::size_t i = 0; i < log.size(); ++i) {
    const ScfIterationLog& e = log[i];
    obs::Json row = obs::Json::object();
    row["iteration"] = i + 1;
    row["energy"] = e.energy;
    row["delta_e"] = e.delta_e;
    row["diis_error"] = e.diis_error;
    row["quartets_computed"] = e.quartets_computed;
    row["seconds"] = e.seconds;
    row["jk_seconds"] = e.jk_seconds;
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

// DIIS error e = X^T (F P S - S P F) X — zero at self-consistency.
Matrix diis_error(const Matrix& f, const Matrix& p, const Matrix& s,
                  const Matrix& x) {
  const Matrix fps = linalg::matmul(linalg::matmul(f, p), s);
  const Matrix spf = linalg::transpose(fps);
  return linalg::matmul(linalg::matmul(linalg::transpose(x), fps - spf), x);
}

}  // namespace

ScfResult rhf(const chem::Molecule& mol, const chem::BasisSet& basis,
              const ScfOptions& options) {
  const obs::Trace::Scope scf_span(obs::global_trace(), "scf.rhf");
  const int nelec = mol.num_electrons();
  if (nelec % 2 != 0)
    throw std::invalid_argument("rhf: closed-shell SCF needs even electrons");
  const auto nocc = static_cast<std::size_t>(nelec / 2);

  const Matrix s = ints::overlap(basis);
  const Matrix x = linalg::inverse_sqrt(s);
  const Matrix h = ints::core_hamiltonian(basis, mol);
  const double enuc = mol.nuclear_repulsion();

  hfx::FockBuilder builder(basis, options.hfx);

  Matrix p = core_guess_density(basis, mol, x);
  Matrix p_prev;     // density of the last *built* J/K
  Matrix j, k;       // running Coulomb/exchange matrices
  linalg::Diis diis;

  ScfResult result;
  result.nuclear_repulsion = enuc;
  double e_prev = 0.0;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const obs::Trace::Scope iter_span(obs::global_trace(), "scf.iteration");
    const obs::Stopwatch iter_watch;
    ScfIterationLog log_entry;

    const bool full_build = !options.incremental_fock || p_prev.empty() ||
                            (iter % options.full_rebuild_every == 0);
    if (full_build) {
      auto jk = builder.coulomb_exchange(p);
      j = std::move(jk.j);
      k = std::move(jk.k);
      log_entry.quartets_computed = jk.stats.screening.quartets_computed;
      log_entry.jk_seconds = jk.stats.wall_seconds;
    } else {
      const Matrix dp = p - p_prev;
      auto jk = builder.coulomb_exchange(dp);
      j += jk.j;
      k += jk.k;
      log_entry.quartets_computed = jk.stats.screening.quartets_computed;
      log_entry.jk_seconds = jk.stats.wall_seconds;
    }
    p_prev = p;

    Matrix f = h + j - 0.5 * k;

    // Energy from the matrices of this iteration's density.
    const double e1 = linalg::trace_product(p, h);
    const double ej = 0.5 * linalg::trace_product(p, j);
    const double ek = -0.25 * linalg::trace_product(p, k);
    const double energy = e1 + ej + ek + enuc;

    const Matrix err = diis_error(f, p, s, x);
    if (options.use_diis) f = diis.extrapolate(f, err);

    log_entry.energy = energy;
    log_entry.delta_e = energy - e_prev;
    log_entry.diis_error = linalg::max_abs(err);
    log_entry.seconds = iter_watch.seconds();
    result.log.push_back(log_entry);

    const bool e_converged =
        iter > 0 && std::abs(energy - e_prev) < options.energy_tolerance;
    const bool d_converged = log_entry.diis_error < options.diis_tolerance;
    e_prev = energy;

    if (e_converged && d_converged) {
      result.converged = true;
      result.energy = energy;
      result.one_electron_energy = e1;
      result.coulomb_energy = ej;
      result.exchange_energy = ek;
      result.iterations = iter + 1;
      result.density = p;
      // Final orbitals from the unextrapolated converged Fock.
      const auto sol = solve_orbitals(h + j - 0.5 * k, x, nocc);
      result.coefficients = sol.coefficients;
      result.orbital_energies = sol.orbital_energies;
      return result;
    }

    const auto sol = solve_orbitals(f, x, nocc);
    p = sol.density;
    result.coefficients = sol.coefficients;
    result.orbital_energies = sol.orbital_energies;
  }

  result.converged = false;
  result.energy = e_prev;
  result.iterations = options.max_iterations;
  result.density = p;
  return result;
}

double homo_lumo_gap(const ScfResult& result, const chem::Molecule& mol) {
  const auto nocc = static_cast<std::size_t>(mol.num_electrons() / 2);
  if (nocc == 0 || nocc >= result.orbital_energies.size()) return 0.0;
  return result.orbital_energies[nocc] - result.orbital_energies[nocc - 1];
}

}  // namespace mthfx::scf
