#include "scf/rhf.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "ints/one_electron.hpp"
#include "linalg/diis.hpp"
#include "linalg/eigen.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"
#include "scf/guess.hpp"
#include "scf/sparse_scf.hpp"

namespace mthfx::scf {

using linalg::Matrix;

obs::Json scf_log_to_json(const std::vector<ScfIterationLog>& log) {
  obs::Json rows = obs::Json::array();
  for (std::size_t i = 0; i < log.size(); ++i) {
    const ScfIterationLog& e = log[i];
    obs::Json row = obs::Json::object();
    row["iteration"] = i + 1;
    row["energy"] = e.energy;
    row["delta_e"] = e.delta_e;
    row["diis_error"] = e.diis_error;
    row["quartets_computed"] = e.quartets_computed;
    row["seconds"] = e.seconds;
    row["jk_seconds"] = e.jk_seconds;
    row["recovery_stage"] =
        to_string(static_cast<RecoveryStage>(e.recovery_stage));
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

// DIIS error e = X^T (F P S - S P F) X — zero at self-consistency.
Matrix diis_error(const Matrix& f, const Matrix& p, const Matrix& s,
                  const Matrix& x) {
  const Matrix fps = linalg::matmul(linalg::matmul(f, p), s);
  const Matrix spf = linalg::transpose(fps);
  return linalg::matmul(linalg::matmul(linalg::transpose(x), fps - spf), x);
}

std::vector<Matrix> history_copy(const std::deque<Matrix>& history) {
  return {history.begin(), history.end()};
}

}  // namespace

Matrix initial_scf_density(const chem::BasisSet& basis,
                           const chem::Molecule& mol, const Matrix& x,
                           const ScfOptions& options, const char* driver) {
  if (!options.initial_density) return core_guess_density(basis, mol, x);
  const Matrix& p0 = *options.initial_density;
  if (p0.rows() != basis.num_functions() || p0.cols() != basis.num_functions())
    throw std::invalid_argument(std::string(driver) +
                                ": initial_density dimension mismatch");
  return p0;
}

ScfResult rhf(const chem::Molecule& mol, const chem::BasisSet& basis,
              const ScfOptions& options) {
  // Large-basis route: distance-culled pairs, blocked J/K, purification
  // instead of diagonalization (scf/sparse_scf.hpp). Small systems never
  // enter it under the default kAuto threshold.
  if (options.hfx.sparsity.blocked(basis.num_functions()))
    return sparse_rhf(mol, basis, options);
  const obs::Trace::Scope scf_span(obs::global_trace(), "scf.rhf");
  const int nelec = mol.num_electrons();
  if (nelec % 2 != 0)
    throw std::invalid_argument("rhf: closed-shell SCF needs even electrons");
  const auto nocc = static_cast<std::size_t>(nelec / 2);

  const Matrix s = ints::overlap(basis);
  const Matrix x = linalg::inverse_sqrt(s);
  const Matrix h = ints::core_hamiltonian(basis, mol);
  const double enuc = mol.nuclear_repulsion();

  std::optional<hfx::FockBuilder> own_builder;
  if (options.shared_builder &&
      &options.shared_builder->basis() != &basis)
    throw std::invalid_argument(
        "rhf: shared_builder is bound to a different basis object");
  if (!options.shared_builder) own_builder.emplace(basis, options.hfx);
  const hfx::FockBuilder& builder =
      options.shared_builder ? *options.shared_builder : *own_builder;

  Matrix p = initial_scf_density(basis, mol, x, options, "rhf");
  Matrix p_prev;     // density of the last *built* J/K
  Matrix j, k;       // running Coulomb/exchange matrices
  // Endgame switch for incremental Fock: once the solve is near
  // convergence, accumulated screening error from the DP builds floors
  // |dE| around the eps_schwarz noise scale, so the strict energy test
  // can only be trusted across consecutive *full* builds. When the
  // near-convergence window below is entered this turns sticky-true and
  // every remaining build is a full one; convergence is then declared
  // from noise-free deltas (and the reported energy comes from a full
  // build rather than a drifted incremental sum).
  bool force_full = false;
  linalg::Diis diis;
  RecoveryLadder ladder(options.recovery);

  ScfResult result;
  result.nuclear_repulsion = enuc;
  double e_prev = 0.0;
  std::size_t start_iter = 0;

  if (options.resume) {
    const fault::ScfCheckpoint& ckpt = *options.resume;
    if (ckpt.method != "rhf")
      throw std::invalid_argument("rhf: checkpoint is for method '" +
                                  ckpt.method + "'");
    start_iter = ckpt.iteration;
    p = ckpt.density;
    p_prev = ckpt.density_prev;
    j = ckpt.j;
    k = ckpt.k;
    e_prev = ckpt.energy;
    force_full = ckpt.force_full_builds;
    diis.restore_history(ckpt.diis_focks, ckpt.diis_errors);
  }

  Matrix last_good_p = p;  // restart point after a non-finite iterate
  double last_e1 = 0.0, last_ej = 0.0, last_ek = 0.0;
  std::size_t completed = start_iter;

  for (std::size_t iter = start_iter; iter < options.max_iterations; ++iter) {
    if (options.cancel) options.cancel->check();
    const obs::Trace::Scope iter_span(obs::global_trace(), "scf.iteration");
    const obs::Stopwatch iter_watch;
    ScfIterationLog log_entry;

    const bool full_build = !options.incremental_fock || p_prev.empty() ||
                            force_full ||
                            (iter % options.full_rebuild_every == 0);
    if (full_build) {
      auto jk = builder.coulomb_exchange(p);
      j = std::move(jk.j);
      k = std::move(jk.k);
      log_entry.quartets_computed = jk.stats.screening.quartets_computed;
      log_entry.jk_seconds = jk.stats.wall_seconds;
    } else {
      const Matrix dp = p - p_prev;
      auto jk = builder.coulomb_exchange(dp);
      j += jk.j;
      k += jk.k;
      log_entry.quartets_computed = jk.stats.screening.quartets_computed;
      log_entry.jk_seconds = jk.stats.wall_seconds;
    }
    p_prev = p;

    Matrix f = h + j - 0.5 * k;

    // Energy from the matrices of this iteration's density.
    const double e1 = linalg::trace_product(p, h);
    const double ej = 0.5 * linalg::trace_product(p, j);
    const double ek = -0.25 * linalg::trace_product(p, k);
    const double energy = e1 + ej + ek + enuc;

    const Matrix err = diis_error(f, p, s, x);
    const double diis_err_norm = linalg::max_abs(err);
    const double delta_e = energy - e_prev;
    const bool finite =
        std::isfinite(energy) && std::isfinite(diis_err_norm);

    ladder.observe(iter, energy, delta_e, diis_err_norm);
    if (ladder.consume_diis_reset()) diis.reset();
    // A non-finite pair would poison the DIIS history; keep it out.
    if (options.use_diis && finite) f = diis.extrapolate(f, err);

    log_entry.energy = energy;
    log_entry.delta_e = delta_e;
    log_entry.diis_error = diis_err_norm;
    log_entry.recovery_stage =
        static_cast<std::uint32_t>(ladder.stage());
    log_entry.seconds = iter_watch.seconds();
    result.log.push_back(log_entry);
    completed = iter + 1;

    if (!finite) {
      result.diagnostics.finite = false;
      if (ladder.exhausted()) {
        result.diagnostics.failure_reason =
            "non-finite energy with recovery ladder exhausted";
        break;
      }
      // Restart from the last healthy density with the newly escalated
      // mitigation engaged; drop incremental state (J/K are tainted).
      p = last_good_p;
      p_prev = Matrix();
      continue;
    }
    last_good_p = p;
    last_e1 = e1;
    last_ej = ej;
    last_ek = ek;

    const bool e_converged =
        iter > 0 && std::abs(energy - e_prev) < options.energy_tolerance;
    const bool d_converged = diis_err_norm < options.diis_tolerance;
    e_prev = energy;

    // Once the DIIS error is inside its tolerance the solve is in the
    // endgame: from here on, build J/K in full so the energy test below
    // compares values free of accumulated DP screening drift. Without
    // this the verdict is decided by where the screening-noise random
    // walk happens to land relative to energy_tolerance — a coin flip
    // for noise ~eps_schwarz — and a "converged" energy inherits the
    // drift of every incremental build since the last rebuild.
    if (!force_full && options.incremental_fock && d_converged)
      force_full = true;

    if (e_converged && d_converged && full_build) {
      result.converged = true;
      result.energy = energy;
      result.one_electron_energy = e1;
      result.coulomb_energy = ej;
      result.exchange_energy = ek;
      result.iterations = iter + 1;
      result.density = p;
      result.diagnostics.final_stage = ladder.stage();
      result.diagnostics.recovery_events = ladder.events();
      // Final orbitals from the unextrapolated converged Fock.
      const auto sol = solve_orbitals(h + j - 0.5 * k, x, nocc);
      result.coefficients = sol.coefficients;
      result.orbital_energies = sol.orbital_energies;
      return result;
    }

    // Recovery mitigations shape the step to the next density: a level
    // shift pushes virtuals up before the orbital solve, damping mixes
    // the previous density into the new one.
    const double shift = ladder.level_shift();
    if (shift > 0.0) {
      const Matrix sps = linalg::matmul(linalg::matmul(s, p), s);
      f += shift * (s - sps);
    }
    const auto sol = solve_orbitals(f, x, nocc);
    const double damping = ladder.damping();
    p = damping > 0.0 ? (1.0 - damping) * sol.density + damping * p
                      : sol.density;
    result.coefficients = sol.coefficients;
    result.orbital_energies = sol.orbital_energies;

    if (options.checkpoint_sink && options.checkpoint_every > 0 &&
        (iter + 1) % options.checkpoint_every == 0) {
      fault::ScfCheckpoint ckpt;
      ckpt.method = "rhf";
      ckpt.iteration = iter + 1;
      ckpt.energy = e_prev;
      ckpt.density = p;
      ckpt.density_prev = p_prev;
      ckpt.j = j;
      ckpt.k = k;
      ckpt.force_full_builds = force_full;
      ckpt.diis_focks = history_copy(diis.fock_history());
      ckpt.diis_errors = history_copy(diis.error_history());
      options.checkpoint_sink(ckpt);
    }
  }

  result.converged = false;
  result.energy = e_prev;
  result.one_electron_energy = last_e1;
  result.coulomb_energy = last_ej;
  result.exchange_energy = last_ek;
  result.iterations = completed;
  result.density = p;
  result.diagnostics.final_stage = ladder.stage();
  result.diagnostics.recovery_events = ladder.events();
  return result;
}

double homo_lumo_gap(const ScfResult& result, const chem::Molecule& mol) {
  const auto nocc = static_cast<std::size_t>(mol.num_electrons() / 2);
  if (nocc == 0 || nocc >= result.orbital_energies.size()) return 0.0;
  return result.orbital_energies[nocc] - result.orbital_energies[nocc - 1];
}

}  // namespace mthfx::scf
