#pragma once

// Analytic RHF nuclear gradients (the force engine behind efficient
// BOMD; the paper's CPMD substrate uses analytic forces throughout).
//
// dE/dX = P·dH + 1/2 Γ·dERI - W·dS + dVnn, with the energy-weighted
// density W and the two-particle density Γ assembled from the converged
// closed-shell SCF solution.

#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "scf/rhf.hpp"

namespace mthfx::scf {

/// Gradient dE/dR per atom (Hartree/Bohr) at a converged RHF solution.
/// The result must come from scf::rhf on the same molecule/basis.
std::vector<chem::Vec3> rhf_gradient(const chem::Molecule& mol,
                                     const chem::BasisSet& basis,
                                     const ScfResult& result);

/// Nuclear-repulsion part of the gradient (exposed for tests).
std::vector<chem::Vec3> nuclear_repulsion_gradient(const chem::Molecule& mol);

}  // namespace mthfx::scf
