#pragma once

// Analytic nuclear gradients for the converged SCF surfaces (the force
// engine behind efficient BOMD; the paper's CPMD substrate uses analytic
// forces throughout).
//
// dE/dX = P·dH + 1/2 Γ·dERI - W·dS + dVnn (+ dExc for semilocal
// functionals), with the energy-weighted density W and the two-particle
// density Γ assembled from the converged closed-shell solution. The
// two-electron term runs through the screened canonical-quartet stream in
// hfx::two_electron_gradient with the functional's exact-exchange
// fraction; the XC term adds orbital and Becke-weight derivatives from
// dft::XcIntegrator::gradient. RHF is the ax = 1, no-XC special case of
// the same machinery.

#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "scf/rhf.hpp"
#include "scf/rks.hpp"

namespace mthfx::scf {

/// Gradient dE/dR per atom (Hartree/Bohr) at a converged RHF solution.
/// The result must come from scf::rhf on the same molecule/basis.
std::vector<chem::Vec3> rhf_gradient(const chem::Molecule& mol,
                                     const chem::BasisSet& basis,
                                     const ScfResult& result);

/// Gradient dE/dR per atom (Hartree/Bohr) at a converged RKS solution —
/// covers every ScfPotential functional: "hf" (pure HFX), "lda"/"pbe"
/// (pure semilocal) and "pbe0" (hybrid). `options` must be the KsOptions
/// the solve ran with (functional, grid resolution and HFX screening
/// thresholds are read from it); `result` must come from scf::rks on the
/// same molecule/basis. When options.scf.shared_builder targets this
/// basis its shell-pair list is reused for the derivative-ERI stream.
std::vector<chem::Vec3> ks_gradient(const chem::Molecule& mol,
                                    const chem::BasisSet& basis,
                                    const KsOptions& options,
                                    const KsResult& result);

/// Nuclear-repulsion part of the gradient (exposed for tests).
std::vector<chem::Vec3> nuclear_repulsion_gradient(const chem::Molecule& mol);

}  // namespace mthfx::scf
