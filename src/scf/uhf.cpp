#include "scf/uhf.hpp"

#include <cmath>
#include <stdexcept>

#include "ints/one_electron.hpp"
#include "linalg/diis.hpp"
#include "linalg/eigen.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"

namespace mthfx::scf {

using linalg::Matrix;

namespace {

struct SpinOrbitals {
  Matrix c;
  linalg::Vector eps;
  Matrix p;  // C_occ C_occ^T, no factor 2
};

SpinOrbitals solve_spin(const Matrix& f, const Matrix& x, std::size_t nocc) {
  const Matrix fprime =
      linalg::matmul(linalg::matmul(linalg::transpose(x), f), x);
  const auto eig = linalg::eigh(fprime);
  SpinOrbitals out;
  out.c = linalg::matmul(x, eig.vectors);
  out.eps = eig.values;
  const std::size_t n = out.c.rows();
  out.p = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double v = 0.0;
      for (std::size_t o = 0; o < nocc; ++o) v += out.c(i, o) * out.c(j, o);
      out.p(i, j) = v;
    }
  return out;
}

// <S^2> = Sz(Sz+1) + N_b - sum_{i in a, j in b} |(C_a^T S C_b)_ij|^2.
double s_squared_expectation(const Matrix& ca, const Matrix& cb,
                             const Matrix& s, std::size_t na, std::size_t nb) {
  const double sz = 0.5 * (static_cast<double>(na) - static_cast<double>(nb));
  double overlap2 = 0.0;
  const Matrix sab = linalg::matmul(linalg::matmul(linalg::transpose(ca), s), cb);
  for (std::size_t i = 0; i < na; ++i)
    for (std::size_t j = 0; j < nb; ++j) overlap2 += sab(i, j) * sab(i, j);
  return sz * (sz + 1.0) + static_cast<double>(nb) - overlap2;
}

}  // namespace

UhfResult uhf(const chem::Molecule& mol, const chem::BasisSet& basis,
              int multiplicity, const UhfOptions& options) {
  const obs::Trace::Scope scf_span(obs::global_trace(), "scf.uhf");
  const int nelec = mol.num_electrons();
  const int nopen = multiplicity - 1;
  if (nopen < 0 || (nelec - nopen) % 2 != 0 || nelec < nopen)
    throw std::invalid_argument(
        "uhf: electron count inconsistent with multiplicity");
  const auto nb = static_cast<std::size_t>((nelec - nopen) / 2);
  const auto na = nb + static_cast<std::size_t>(nopen);

  const Matrix s = ints::overlap(basis);
  const Matrix x = linalg::inverse_sqrt(s);
  const Matrix h = ints::core_hamiltonian(basis, mol);
  const double enuc = mol.nuclear_repulsion();

  hfx::FockBuilder builder(basis, options.hfx);

  SpinOrbitals a = solve_spin(h, x, na);
  SpinOrbitals b = solve_spin(h, x, nb);

  if (options.break_symmetry && na < basis.num_functions()) {
    // Rotate the alpha HOMO toward the LUMO and rebuild P_a.
    const std::size_t homo = na - 1, lumo = na;
    const double c = std::cos(0.25 * M_PI / 2.0), sn = std::sin(0.25 * M_PI / 2.0);
    for (std::size_t i = 0; i < a.c.rows(); ++i) {
      const double vh = a.c(i, homo), vl = a.c(i, lumo);
      a.c(i, homo) = c * vh + sn * vl;
      a.c(i, lumo) = -sn * vh + c * vl;
    }
    const std::size_t n = a.c.rows();
    a.p = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double v = 0.0;
        for (std::size_t o = 0; o < na; ++o) v += a.c(i, o) * a.c(j, o);
        a.p(i, j) = v;
      }
  }

  linalg::Diis diis_a, diis_b;
  RecoveryLadder ladder(options.recovery);
  UhfResult result;
  result.nuclear_repulsion = enuc;
  double e_prev = 0.0;
  std::size_t start_iter = 0;

  if (options.resume) {
    const fault::ScfCheckpoint& ckpt = *options.resume;
    if (ckpt.method != "uhf")
      throw std::invalid_argument("uhf: checkpoint is for method '" +
                                  ckpt.method + "'");
    start_iter = ckpt.iteration;
    a.p = ckpt.density;
    b.p = ckpt.density_beta;
    e_prev = ckpt.energy;
    diis_a.restore_history(ckpt.diis_focks, ckpt.diis_errors);
    diis_b.restore_history(ckpt.diis_focks_beta, ckpt.diis_errors_beta);
  }

  Matrix last_good_pa = a.p, last_good_pb = b.p;
  std::size_t completed = start_iter;

  for (std::size_t iter = start_iter; iter < options.max_iterations;
       ++iter) {
    if (options.cancel) options.cancel->check();
    const obs::Trace::Scope iter_span(obs::global_trace(), "scf.iteration");
    const obs::Stopwatch iter_watch;
    const auto jk_a = builder.coulomb_exchange(a.p);
    const auto jk_b = builder.coulomb_exchange(b.p);
    const Matrix j_total = jk_a.j + jk_b.j;

    Matrix fa = h + j_total - jk_a.k;
    Matrix fb = h + j_total - jk_b.k;

    const Matrix pt = a.p + b.p;
    const double energy = 0.5 * (linalg::trace_product(pt, h) +
                                 linalg::trace_product(a.p, fa) +
                                 linalg::trace_product(b.p, fb)) +
                          enuc;

    auto err_for = [&](const Matrix& f, const Matrix& p) {
      const Matrix fps = linalg::matmul(linalg::matmul(f, p), s);
      return linalg::matmul(
          linalg::matmul(linalg::transpose(x), fps - linalg::transpose(fps)),
          x);
    };
    const Matrix ea = err_for(fa, a.p);
    const Matrix eb = err_for(fb, b.p);
    const double diis_err = std::max(linalg::max_abs(ea), linalg::max_abs(eb));
    const double delta_e = energy - e_prev;
    const bool finite = std::isfinite(energy) && std::isfinite(diis_err);

    ladder.observe(iter, energy, delta_e, diis_err);
    if (ladder.consume_diis_reset()) {
      diis_a.reset();
      diis_b.reset();
    }
    if (options.use_diis && finite) {
      fa = diis_a.extrapolate(fa, ea);
      fb = diis_b.extrapolate(fb, eb);
    }

    ScfIterationLog log_entry;
    log_entry.energy = energy;
    log_entry.delta_e = delta_e;
    log_entry.diis_error = diis_err;
    log_entry.quartets_computed = jk_a.stats.screening.quartets_computed +
                                  jk_b.stats.screening.quartets_computed;
    log_entry.jk_seconds =
        jk_a.stats.wall_seconds + jk_b.stats.wall_seconds;
    log_entry.seconds = iter_watch.seconds();
    log_entry.recovery_stage = static_cast<std::uint32_t>(ladder.stage());
    result.log.push_back(log_entry);
    completed = iter + 1;

    if (!finite) {
      result.diagnostics.finite = false;
      if (ladder.exhausted()) {
        result.diagnostics.failure_reason =
            "non-finite energy with recovery ladder exhausted";
        break;
      }
      a.p = last_good_pa;
      b.p = last_good_pb;
      continue;
    }
    last_good_pa = a.p;
    last_good_pb = b.p;

    const bool e_ok =
        iter > 0 && std::abs(energy - e_prev) < options.energy_tolerance;
    const bool d_ok = diis_err < options.diis_tolerance;
    e_prev = energy;

    if (e_ok && d_ok) {
      result.converged = true;
      result.energy = energy;
      result.iterations = iter + 1;
      result.density_alpha = a.p;
      result.density_beta = b.p;
      result.coefficients_alpha = a.c;
      result.coefficients_beta = b.c;
      result.orbital_energies_alpha = a.eps;
      result.orbital_energies_beta = b.eps;
      result.s_squared = s_squared_expectation(a.c, b.c, s, na, nb);
      result.diagnostics.final_stage = ladder.stage();
      result.diagnostics.recovery_events = ladder.events();
      return result;
    }

    // The recovery ladder composes with the user-configured mitigations:
    // whichever is stronger wins.
    const double shift = std::max(options.level_shift, ladder.level_shift());
    if (shift > 0.0) {
      const Matrix spa = linalg::matmul(linalg::matmul(s, a.p), s);
      const Matrix spb = linalg::matmul(linalg::matmul(s, b.p), s);
      fa += shift * (s - spa);
      fb += shift * (s - spb);
    }
    const Matrix pa_old = a.p;
    const Matrix pb_old = b.p;
    a = solve_spin(fa, x, na);
    b = solve_spin(fb, x, nb);
    const double configured_damping =
        options.density_damping > 0.0 && diis_err > options.damping_until
            ? options.density_damping
            : 0.0;
    const double d = std::max(configured_damping, ladder.damping());
    if (d > 0.0) {
      a.p = (1.0 - d) * a.p + d * pa_old;
      b.p = (1.0 - d) * b.p + d * pb_old;
    }

    if (options.checkpoint_sink && options.checkpoint_every > 0 &&
        (iter + 1) % options.checkpoint_every == 0) {
      fault::ScfCheckpoint ckpt;
      ckpt.method = "uhf";
      ckpt.iteration = iter + 1;
      ckpt.energy = e_prev;
      ckpt.density = a.p;
      ckpt.density_beta = b.p;
      const auto copy = [](const auto& history) {
        return std::vector<Matrix>(history.begin(), history.end());
      };
      ckpt.diis_focks = copy(diis_a.fock_history());
      ckpt.diis_errors = copy(diis_a.error_history());
      ckpt.diis_focks_beta = copy(diis_b.fock_history());
      ckpt.diis_errors_beta = copy(diis_b.error_history());
      options.checkpoint_sink(ckpt);
    }
  }

  result.converged = false;
  result.energy = e_prev;
  result.iterations = completed;
  result.density_alpha = a.p;
  result.density_beta = b.p;
  result.coefficients_alpha = a.c;
  result.coefficients_beta = b.c;
  result.orbital_energies_alpha = a.eps;
  result.orbital_energies_beta = b.eps;
  result.s_squared = s_squared_expectation(a.c, b.c, s, na, nb);
  result.diagnostics.final_stage = ladder.stage();
  result.diagnostics.recovery_events = ladder.events();
  return result;
}

}  // namespace mthfx::scf
