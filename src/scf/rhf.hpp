#pragma once

// Restricted Hartree–Fock with DIIS and optional incremental Fock builds.
//
// The HFX kernel enters through hfx::FockBuilder; as the density settles,
// the incremental (ΔP) build plus density screening makes late SCF
// iterations progressively cheaper — one of the paper's efficiency levers.

#include <cstddef>
#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "hfx/fock_builder.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::scf {

struct ScfOptions {
  std::size_t max_iterations = 100;
  double energy_tolerance = 1e-9;    ///< |dE| between iterations
  double diis_tolerance = 1e-7;      ///< max |FPS - SPF| for convergence
  bool use_diis = true;
  bool incremental_fock = true;      ///< build J/K from ΔP when possible
  std::size_t full_rebuild_every = 20;
  hfx::HfxOptions hfx;               ///< screening/schedule of the JK builds
};

struct ScfIterationLog {
  double energy = 0.0;
  double delta_e = 0.0;
  double diis_error = 0.0;
  std::uint64_t quartets_computed = 0;
  double seconds = 0.0;     ///< iteration wall time (build through DIIS)
  double jk_seconds = 0.0;  ///< J/K build wall time within the iteration
};

/// Per-iteration convergence/timing rows as a JSON array — the
/// machine-readable companion to the SCF convergence table.
obs::Json scf_log_to_json(const std::vector<ScfIterationLog>& log);

struct ScfResult {
  bool converged = false;
  double energy = 0.0;               ///< total (electronic + nuclear)
  double nuclear_repulsion = 0.0;
  double one_electron_energy = 0.0;
  double coulomb_energy = 0.0;
  double exchange_energy = 0.0;      ///< HFX part (scaled by hybrid weight)
  std::size_t iterations = 0;
  linalg::Matrix density;
  linalg::Matrix coefficients;
  linalg::Vector orbital_energies;
  std::vector<ScfIterationLog> log;
};

/// Run closed-shell RHF. Throws std::invalid_argument for odd electron
/// counts.
ScfResult rhf(const chem::Molecule& mol, const chem::BasisSet& basis,
              const ScfOptions& options = {});

/// HOMO-LUMO gap in Hartree (0 when no virtual orbital exists).
double homo_lumo_gap(const ScfResult& result, const chem::Molecule& mol);

}  // namespace mthfx::scf
