#pragma once

// Restricted Hartree–Fock with DIIS and optional incremental Fock builds.
//
// The HFX kernel enters through hfx::FockBuilder; as the density settles,
// the incremental (ΔP) build plus density screening makes late SCF
// iterations progressively cheaper — one of the paper's efficiency levers.

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "fault/cancel.hpp"
#include "fault/checkpoint.hpp"
#include "hfx/fock_builder.hpp"
#include "linalg/matrix.hpp"
#include "scf/recovery.hpp"

namespace mthfx::scf {

struct ScfOptions {
  std::size_t max_iterations = 100;
  double energy_tolerance = 1e-9;    ///< |dE| between iterations
  double diis_tolerance = 1e-7;      ///< max |FPS - SPF| for convergence
  bool use_diis = true;
  bool incremental_fock = true;      ///< build J/K from ΔP when possible
  std::size_t full_rebuild_every = 20;
  hfx::HfxOptions hfx;               ///< screening/schedule of the JK builds
  RecoveryOptions recovery;          ///< divergence detection / escalation

  /// Resume mid-solve from a checkpoint (see docs/resilience.md). With a
  /// deterministic build (single thread or static schedule) the resumed
  /// run reproduces the uninterrupted run's energies bit-for-bit.
  std::shared_ptr<const fault::ScfCheckpoint> resume;
  /// Called with the end-of-iteration state every `checkpoint_every`
  /// iterations (callers persist it via fault::save_checkpoint).
  std::function<void(const fault::ScfCheckpoint&)> checkpoint_sink;
  std::size_t checkpoint_every = 1;

  /// Cooperative cancellation, polled once per SCF iteration (all four
  /// drivers). An armed token makes the solve throw fault::Cancelled at
  /// the next iteration boundary — after the latest checkpoint, so a
  /// cancelled job resumes instead of restarting. Used by the engine's
  /// deadline watchdog to reclaim hung/overdue jobs.
  std::shared_ptr<const fault::CancelToken> cancel;

  /// Warm-start density guess replacing the core guess (rhf and rks).
  /// The MD surface feeds extrapolated previous-step densities through
  /// here so mid-trajectory solves converge in a few iterations. Throws
  /// std::invalid_argument on a dimension mismatch with the basis.
  std::shared_ptr<const linalg::Matrix> initial_density;

  /// Non-owning: reuse this prebuilt FockBuilder (its basis must be the
  /// exact BasisSet object passed to the solve — rebind it first when the
  /// geometry changed). Skips Schwarz/pair/Hermite setup per solve; the
  /// MD surface shares one builder across a whole trajectory.
  hfx::FockBuilder* shared_builder = nullptr;
};

struct ScfIterationLog {
  double energy = 0.0;
  double delta_e = 0.0;
  double diis_error = 0.0;
  std::uint64_t quartets_computed = 0;
  double seconds = 0.0;     ///< iteration wall time (build through DIIS)
  double jk_seconds = 0.0;  ///< J/K build wall time within the iteration
  /// Recovery ladder stage active during this iteration
  /// (static_cast of scf::RecoveryStage).
  std::uint32_t recovery_stage = 0;
};

/// Per-iteration convergence/timing rows as a JSON array — the
/// machine-readable companion to the SCF convergence table.
obs::Json scf_log_to_json(const std::vector<ScfIterationLog>& log);

struct ScfResult {
  bool converged = false;
  double energy = 0.0;               ///< total (electronic + nuclear)
  double nuclear_repulsion = 0.0;
  double one_electron_energy = 0.0;
  double coulomb_energy = 0.0;
  double exchange_energy = 0.0;      ///< HFX part (scaled by hybrid weight)
  std::size_t iterations = 0;
  linalg::Matrix density;
  linalg::Matrix coefficients;
  linalg::Vector orbital_energies;
  std::vector<ScfIterationLog> log;
  /// What the recovery ladder saw and did; failure_reason is set when the
  /// solve was abandoned (e.g. non-finite at the top of the ladder).
  ScfDiagnostics diagnostics;
};

/// Run closed-shell RHF. Throws std::invalid_argument for odd electron
/// counts.
ScfResult rhf(const chem::Molecule& mol, const chem::BasisSet& basis,
              const ScfOptions& options = {});

/// Guess density honoring ScfOptions::initial_density (falls back to the
/// core guess). Shared by the rhf and rks drivers.
linalg::Matrix initial_scf_density(const chem::BasisSet& basis,
                                   const chem::Molecule& mol,
                                   const linalg::Matrix& x,
                                   const ScfOptions& options,
                                   const char* driver);

/// HOMO-LUMO gap in Hartree (0 when no virtual orbital exists).
double homo_lumo_gap(const ScfResult& result, const chem::Molecule& mol);

}  // namespace mthfx::scf
