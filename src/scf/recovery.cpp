#include "scf/recovery.hpp"

#include <cmath>

namespace mthfx::scf {

const char* to_string(RecoveryStage stage) {
  switch (stage) {
    case RecoveryStage::kNone: return "none";
    case RecoveryStage::kDiisReset: return "diis_reset";
    case RecoveryStage::kDamping: return "damping";
    case RecoveryStage::kLevelShift: return "level_shift";
  }
  return "?";
}

obs::Json to_json(const ScfDiagnostics& diagnostics) {
  obs::Json out = obs::Json::object();
  out["finite"] = diagnostics.finite;
  out["final_stage"] = to_string(diagnostics.final_stage);
  obs::Json events = obs::Json::array();
  for (const RecoveryEvent& e : diagnostics.recovery_events) {
    obs::Json row = obs::Json::object();
    row["iteration"] = e.iteration;
    row["stage"] = to_string(e.stage);
    row["reason"] = e.reason;
    events.push_back(std::move(row));
  }
  out["recovery_events"] = std::move(events);
  out["failure_reason"] = diagnostics.failure_reason;
  return out;
}

RecoveryLadder::RecoveryLadder(RecoveryOptions options) : options_(options) {}

void RecoveryLadder::escalate(std::size_t iteration,
                              const std::string& reason) {
  if (stage_ == RecoveryStage::kLevelShift) return;  // already at the top
  stage_ = static_cast<RecoveryStage>(static_cast<std::uint8_t>(stage_) + 1);
  if (stage_ >= RecoveryStage::kDiisReset) pending_diis_reset_ = true;
  events_.push_back({iteration, stage_, reason});
  last_escalation_ = iteration;
  has_escalated_ = true;
  // A fresh stage gets a fresh view of the error trend.
  has_diis_error_ = false;
  flip_count_ = 0;
}

RecoveryStage RecoveryLadder::observe(std::size_t iteration, double energy,
                                      double delta_e, double diis_error) {
  if (!options_.enabled) return RecoveryStage::kNone;
  const std::size_t events_before = events_.size();

  const bool finite = std::isfinite(energy) && std::isfinite(diis_error);
  if (!finite) {
    saw_non_finite_ = true;
    if (stage_ == RecoveryStage::kLevelShift) {
      // Top of the ladder and still producing NaN — unrecoverable.
      exhausted_ = true;
      return RecoveryStage::kNone;
    }
    // Non-finite is unambiguous; escalate immediately, no patience.
    escalate(iteration, "non-finite energy or DIIS error");
    return events_.size() > events_before ? stage_ : RecoveryStage::kNone;
  }

  if (iteration < options_.min_iterations) return RecoveryStage::kNone;
  const bool patient =
      !has_escalated_ || iteration >= last_escalation_ + options_.patience;

  // DIIS error blow-up: error grew orders of magnitude past its best.
  if (has_diis_error_) {
    if (diis_error > options_.diis_growth * best_diis_error_ && patient) {
      escalate(iteration, "DIIS error grew past " +
                              std::to_string(options_.diis_growth) +
                              "x its best value");
    }
    best_diis_error_ = std::min(best_diis_error_, diis_error);
  } else {
    best_diis_error_ = diis_error;
    has_diis_error_ = true;
  }

  // Energy oscillation: sustained ΔE sign flips of non-trivial size.
  if (std::abs(delta_e) > options_.oscillation_floor &&
      std::abs(prev_delta_e_) > options_.oscillation_floor &&
      delta_e * prev_delta_e_ < 0.0) {
    ++flip_count_;
  } else {
    flip_count_ = 0;
  }
  prev_delta_e_ = delta_e;
  if (flip_count_ >= options_.oscillation_flips && patient) {
    escalate(iteration, "energy oscillating (" +
                            std::to_string(flip_count_) +
                            " consecutive sign flips)");
  }

  return events_.size() > events_before ? stage_ : RecoveryStage::kNone;
}

bool RecoveryLadder::consume_diis_reset() {
  const bool fire = pending_diis_reset_;
  pending_diis_reset_ = false;
  return fire;
}

}  // namespace mthfx::scf
