#include "scf/sparse_scf.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "hfx/cell_list.hpp"
#include "ints/one_electron.hpp"
#include "linalg/diis.hpp"
#include "linalg/purify.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"

namespace mthfx::scf {

using linalg::BlockPartition;
using linalg::BlockSparseMatrix;
using linalg::Matrix;

linalg::BlockPartition shell_aligned_partition(const chem::BasisSet& basis,
                                               std::size_t target_nbf) {
  if (target_nbf == 0) target_nbf = 1;
  std::vector<std::size_t> offsets{0};
  std::size_t filled = 0;
  for (std::size_t s = 0; s < basis.num_shells(); ++s) {
    filled += basis.shell(s).num_functions();
    if (filled >= target_nbf) {
      offsets.push_back(offsets.back() + filled);
      filled = 0;
    }
  }
  if (filled > 0) offsets.push_back(offsets.back() + filled);
  if (offsets.size() == 1) offsets.push_back(basis.num_functions());
  return BlockPartition(std::move(offsets));
}

namespace {

// Gaussian-product gate for the T/V assembly: with μ_min the smallest
// product exponent of the pair, every primitive contribution carries
// exp(-μ R²) ≤ exp(-kOneElectronLogCut) ≈ 4e-18; even amplified by
// contraction/polynomial growth (~1e3) and the nuclear sum Σ_A Z_A/R
// (~1e4 at a thousand atoms) the dropped V elements sit below ~1e-11.
// Note this is a *distance* gate, not an overlap-magnitude gate: blocks
// like same-center s|p have exactly zero overlap by parity yet O(1)
// nuclear attraction, so |S| says nothing about |V|.
constexpr double kOneElectronLogCut = 40.0;

struct OneElectron {
  Matrix s, h;
  std::size_t candidates = 0;
};

// S and H = T + V assembled over cell-list candidate pairs only. The
// pairs never proposed are beyond summed extent radii, where every
// primitive product underflows the ERI kernel's own cutoff — the same
// argument the culled ERI pair list rests on.
OneElectron one_electron_culled(const chem::BasisSet& basis,
                                const chem::Molecule& mol) {
  const std::size_t nao = basis.num_functions();
  OneElectron out{Matrix(nao, nao), Matrix(nao, nao), 0};
  const hfx::CellList cells(basis, hfx::shell_extent_radii(basis));

  const auto scatter = [&](Matrix& m, const Matrix& block, std::size_t sa,
                           std::size_t sb) {
    const std::size_t oa = basis.first_function(sa);
    const std::size_t ob = basis.first_function(sb);
    for (std::size_t i = 0; i < block.rows(); ++i)
      for (std::size_t j = 0; j < block.cols(); ++j) {
        m(oa + i, ob + j) = block(i, j);
        m(ob + j, oa + i) = block(i, j);
      }
  };

  // Smallest primitive exponent per shell; μ = αβ/(α+β) is monotone in
  // both arguments, so the loosest product exponent of a pair is
  // min_a min_b / (min_a + min_b).
  std::vector<double> min_exp(basis.num_shells());
  for (std::size_t s = 0; s < basis.num_shells(); ++s) {
    double mn = basis.shell(s).exponents()[0];
    for (const double e : basis.shell(s).exponents()) mn = std::min(mn, e);
    min_exp[s] = mn;
  }

  std::vector<std::uint32_t> cand;
  for (std::size_t sa = 0; sa < basis.num_shells(); ++sa) {
    cand.clear();
    cells.candidates(sa, &cand);
    out.candidates += cand.size();
    for (const std::uint32_t sb : cand) {
      const Matrix sblock = ints::overlap_block(basis.shell(sa),
                                                basis.shell(sb));
      scatter(out.s, sblock, sa, sb);
      const double r = chem::distance(basis.shell(sa).center(),
                                      basis.shell(sb).center());
      const double mu_min = min_exp[sa] * min_exp[sb] /
                            (min_exp[sa] + min_exp[sb]);
      if (mu_min * r * r > kOneElectronLogCut) continue;
      Matrix hblock = ints::kinetic_block(basis.shell(sa), basis.shell(sb));
      hblock += ints::nuclear_block(basis.shell(sa), basis.shell(sb), mol);
      scatter(out.h, hblock, sa, sb);
    }
  }
  return out;
}

}  // namespace

ScfResult sparse_rhf(const chem::Molecule& mol, const chem::BasisSet& basis,
                     const ScfOptions& options, SparseScfInfo* info) {
  const obs::Trace::Scope scf_span(obs::global_trace(), "scf.sparse_rhf");
  const int nelec = mol.num_electrons();
  if (nelec % 2 != 0)
    throw std::invalid_argument(
        "sparse_rhf: closed-shell SCF needs even electrons");
  const auto nocc = static_cast<std::size_t>(nelec / 2);
  const std::size_t nao = basis.num_functions();
  const double drop_tol = options.hfx.sparsity.drop_tol;
  const BlockPartition partition =
      shell_aligned_partition(basis, options.hfx.sparsity.block_nbf);

  SparseScfInfo local_info;
  SparseScfInfo& si = info ? *info : local_info;
  si.nbf = nao;

  // One-electron matrices over cell-list candidates.
  const obs::Stopwatch oe_watch;
  OneElectron oe = one_electron_culled(basis, mol);
  si.one_electron_seconds = oe_watch.seconds();
  si.pair_candidates = oe.candidates;
  const Matrix& h = oe.h;
  const double enuc = mol.nuclear_repulsion();

  // Pair list + Hermite tables. The sparsity options route the builder
  // to the culled cell-list constructor.
  const obs::Stopwatch setup_watch;
  std::optional<hfx::FockBuilder> own_builder;
  if (options.shared_builder && &options.shared_builder->basis() != &basis)
    throw std::invalid_argument(
        "sparse_rhf: shared_builder is bound to a different basis object");
  if (!options.shared_builder) own_builder.emplace(basis, options.hfx);
  const hfx::FockBuilder& builder =
      options.shared_builder ? *options.shared_builder : *own_builder;
  si.num_pairs = builder.pairs().size();
  si.setup_seconds = setup_watch.seconds();

  // S^{-1/2} without an eigensolver.
  const BlockSparseMatrix s_blk =
      BlockSparseMatrix::from_dense(oe.s, partition, drop_tol);
  const auto ns = linalg::inverse_sqrt_ns(s_blk, drop_tol);
  if (!ns.converged)
    throw std::runtime_error(
        "sparse_rhf: Newton-Schulz S^{-1/2} did not converge (residual " +
        std::to_string(ns.residual) + ")");
  const BlockSparseMatrix& x_blk = ns.inverse_sqrt;
  si.ns_iterations = ns.iterations;
  si.ns_residual = ns.residual;

  // Orthonormal-basis density from a Fock-like matrix via TC2; AO-basis
  // closed-shell density is 2 X P' X.
  const auto density_from_fock = [&](const BlockSparseMatrix& f_blk,
                                     linalg::PurifyStats* stats) -> Matrix {
    const BlockSparseMatrix f_ortho = linalg::multiply(
        linalg::multiply(x_blk, f_blk, drop_tol), x_blk, drop_tol);
    BlockSparseMatrix p_ortho = linalg::tc2_density(f_ortho, nocc, drop_tol,
                                                    stats);
    if (stats && !stats->converged)
      throw std::runtime_error("sparse_rhf: TC2 purification did not converge");
    BlockSparseMatrix p_ao = linalg::multiply(
        linalg::multiply(x_blk, p_ortho, drop_tol), x_blk, drop_tol);
    p_ao.scale(2.0);
    si.density_nnz = p_ao.nnz_fraction();
    return p_ao.to_dense();
  };

  // Guess: TC2 on the core Hamiltonian — the same physics as the dense
  // path's core guess, reached without a diagonalization.
  Matrix p;
  if (options.initial_density) {
    if (options.initial_density->rows() != nao ||
        options.initial_density->cols() != nao)
      throw std::invalid_argument(
          "sparse_rhf: initial_density dimension mismatch");
    p = *options.initial_density;
  } else {
    linalg::PurifyStats guess_stats;
    p = density_from_fock(
        BlockSparseMatrix::from_dense(h, partition, drop_tol), &guess_stats);
  }

  Matrix p_prev;  // density of the last built J/K
  Matrix j, k;
  bool force_full = false;
  linalg::Diis diis;

  ScfResult result;
  result.nuclear_repulsion = enuc;
  double e_prev = 0.0;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (options.cancel) options.cancel->check();
    const obs::Trace::Scope iter_span(obs::global_trace(),
                                      "scf.sparse_iteration");
    const obs::Stopwatch iter_watch;
    ScfIterationLog log_entry;

    const bool full_build = !options.incremental_fock || p_prev.empty() ||
                            force_full ||
                            (iter % options.full_rebuild_every == 0);
    {
      const BlockSparseMatrix dp_blk = BlockSparseMatrix::from_dense(
          full_build ? p : p - p_prev, partition, drop_tol);
      auto jk = builder.coulomb_exchange_blocked(dp_blk);
      if (full_build) {
        j = std::move(jk.j);
        k = std::move(jk.k);
      } else {
        j += jk.j;
        k += jk.k;
      }
      log_entry.quartets_computed = jk.stats.screening.quartets_computed;
      log_entry.jk_seconds = jk.stats.wall_seconds;
      si.jk_seconds_total += jk.stats.wall_seconds;
    }
    p_prev = p;

    Matrix f = h + j - 0.5 * k;

    const double e1 = linalg::trace_product(p, h);
    const double ej = 0.5 * linalg::trace_product(p, j);
    const double ek = -0.25 * linalg::trace_product(p, k);
    const double energy = e1 + ej + ek + enuc;

    // DIIS error F P S - S P F through blocked multiplies — the dense
    // commutator would be three O(nao³) matmuls.
    const BlockSparseMatrix f_blk =
        BlockSparseMatrix::from_dense(f, partition, drop_tol);
    si.fock_nnz = f_blk.nnz_fraction();
    const BlockSparseMatrix p_blk =
        BlockSparseMatrix::from_dense(p, partition, drop_tol);
    const BlockSparseMatrix fps = linalg::multiply(
        linalg::multiply(f_blk, p_blk, drop_tol), s_blk, drop_tol);
    const Matrix fps_dense = fps.to_dense();
    const Matrix err_dense = fps_dense - linalg::transpose(fps_dense);
    const double diis_err_norm = linalg::max_abs(err_dense);
    const double delta_e = energy - e_prev;

    if (!std::isfinite(energy) || !std::isfinite(diis_err_norm)) {
      result.diagnostics.finite = false;
      result.diagnostics.failure_reason =
          "sparse_rhf: non-finite iterate (no recovery ladder on this path)";
      break;
    }
    if (options.use_diis) f = diis.extrapolate(f, err_dense);

    log_entry.energy = energy;
    log_entry.delta_e = delta_e;
    log_entry.diis_error = diis_err_norm;
    log_entry.seconds = iter_watch.seconds();
    result.log.push_back(log_entry);

    const bool e_converged =
        iter > 0 && std::abs(delta_e) < options.energy_tolerance;
    const bool d_converged = diis_err_norm < options.diis_tolerance;
    e_prev = energy;
    // Same endgame rule as the dense driver: once DIIS error is inside
    // tolerance, keep building in full so the energy test compares
    // drift-free values.
    if (!force_full && options.incremental_fock && d_converged)
      force_full = true;

    if (e_converged && d_converged && full_build) {
      result.converged = true;
      result.energy = energy;
      result.one_electron_energy = e1;
      result.coulomb_energy = ej;
      result.exchange_energy = ek;
      result.iterations = iter + 1;
      result.density = p;
      return result;
    }

    linalg::PurifyStats tc2_stats;
    p = density_from_fock(
        BlockSparseMatrix::from_dense(f, partition, drop_tol), &tc2_stats);
    si.last_tc2_iterations = tc2_stats.iterations;
  }

  result.converged = false;
  result.energy = e_prev;
  result.iterations = result.log.size();
  result.density = p;
  return result;
}

}  // namespace mthfx::scf
