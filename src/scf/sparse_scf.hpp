#pragma once

// Near-linear RHF driver for large electrolyte boxes.
//
// Composition of the three sparsity levers this layer owns:
//  - one-electron matrices assembled over cell-list candidate pairs only
//    (ints::*_block over hfx::CellList), never the dense O(ns²) sweep;
//  - J/K from FockBuilder's density-linked blocked build
//    (hfx/sparse_build.cpp), incremental in ΔP as the density settles;
//  - no eigensolver anywhere: S^{-1/2} by Newton–Schulz and the density
//    update by TC2 purification (linalg/purify.hpp), both on block-sparse
//    matrices whose retained fraction falls with box size.
//
// The driver is selected by scf::rhf automatically when
// options.hfx.sparsity.blocked(nbf) holds; callers keep using rhf().
// The returned ScfResult carries energy/density/log but — by
// construction, no orbitals exist — empty coefficients and
// orbital_energies.

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "linalg/block_sparse.hpp"
#include "scf/rhf.hpp"

namespace mthfx::scf {

/// Observability of one sparse solve (per-iteration rows are in
/// ScfResult::log as usual).
struct SparseScfInfo {
  std::size_t nbf = 0;
  std::size_t num_pairs = 0;            ///< kept shell pairs (culled list)
  std::size_t pair_candidates = 0;      ///< cell-list proposals
  double one_electron_seconds = 0.0;    ///< culled S/T/V assembly
  double setup_seconds = 0.0;           ///< builder construction (pairs etc.)
  int ns_iterations = 0;                ///< Newton–Schulz steps for S^{-1/2}
  double ns_residual = 0.0;
  double density_nnz = 0.0;             ///< final density block-nnz fraction
  double fock_nnz = 0.0;                ///< final Fock block-nnz fraction
  int last_tc2_iterations = 0;
  double jk_seconds_total = 0.0;        ///< Σ blocked J/K build wall time
};

/// Closed-shell RHF with the blocked/purification pipeline. Honors
/// max_iterations, tolerances, use_diis, incremental_fock,
/// full_rebuild_every, hfx options (including sparsity), initial_density
/// and shared_builder; checkpoint/resume and the recovery ladder are not
/// wired into this path.
ScfResult sparse_rhf(const chem::Molecule& mol, const chem::BasisSet& basis,
                     const ScfOptions& options = {},
                     SparseScfInfo* info = nullptr);

/// Contiguous partition of the basis dimension cut at shell boundaries,
/// each block holding ~target_nbf functions — the partition every
/// block-sparse matrix of one solve shares.
linalg::BlockPartition shell_aligned_partition(const chem::BasisSet& basis,
                                               std::size_t target_nbf);

}  // namespace mthfx::scf
