#include "scf/guess.hpp"

#include <stdexcept>

#include "ints/one_electron.hpp"
#include "linalg/eigen.hpp"

namespace mthfx::scf {

using linalg::Matrix;

OrbitalSolution solve_orbitals(const Matrix& f, const Matrix& x,
                               std::size_t nocc) {
  // F' = X^T F X; F' C' = C' e; C = X C'.
  const Matrix fprime = linalg::matmul(linalg::matmul(linalg::transpose(x), f), x);
  const auto eig = linalg::eigh(fprime);
  const Matrix c = linalg::matmul(x, eig.vectors);

  const std::size_t n = c.rows();
  if (nocc > n)
    throw std::invalid_argument("solve_orbitals: more occupied MOs than AOs");

  Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double v = 0.0;
      for (std::size_t o = 0; o < nocc; ++o) v += c(i, o) * c(j, o);
      p(i, j) = 2.0 * v;
    }
  return {c, eig.values, p};
}

Matrix core_guess_density(const chem::BasisSet& basis,
                          const chem::Molecule& mol, const Matrix& x) {
  const int nelec = mol.num_electrons();
  if (nelec % 2 != 0)
    throw std::invalid_argument(
        "core_guess_density: closed-shell SCF requires an even electron "
        "count");
  const Matrix h = ints::core_hamiltonian(basis, mol);
  return solve_orbitals(h, x, static_cast<std::size_t>(nelec / 2)).density;
}

}  // namespace mthfx::scf
