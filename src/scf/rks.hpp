#pragma once

// Restricted Kohn–Sham SCF with hybrid-functional support. PBE0 runs the
// same HFX machinery as RHF with a 0.25 exchange fraction — exactly how
// the paper deploys the kernel inside DFT-based molecular dynamics.

#include "dft/functionals.hpp"
#include "dft/grid.hpp"
#include "scf/rhf.hpp"

namespace mthfx::scf {

struct KsOptions {
  ScfOptions scf;              ///< convergence / HFX settings
  dft::GridOptions grid;       ///< Becke grid resolution
  std::string functional = "pbe0";
};

struct KsResult {
  ScfResult scf;               ///< energies, density, orbitals
  double xc_energy = 0.0;
  double exact_exchange_energy = 0.0;
  double integrated_density = 0.0;  ///< grid check, should be N_electrons
};

/// Run closed-shell restricted Kohn–Sham ("hf" functional reduces to RHF).
KsResult rks(const chem::Molecule& mol, const chem::BasisSet& basis,
             const KsOptions& options = {});

}  // namespace mthfx::scf
