#pragma once

// Initial-guess machinery for the SCF drivers.

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::scf {

/// Closed-shell density from occupying the lowest `nocc` orbitals of a
/// Fock-like matrix `f`: P = 2 C_occ C_occ^T with F C = S C e solved via
/// the orthogonalizer `x` (= S^{-1/2}).
struct OrbitalSolution {
  linalg::Matrix coefficients;     ///< C (nao x nao), columns = MOs
  linalg::Vector orbital_energies; ///< ascending
  linalg::Matrix density;          ///< P = 2 C_occ C_occ^T
};

OrbitalSolution solve_orbitals(const linalg::Matrix& f, const linalg::Matrix& x,
                               std::size_t nocc);

/// Core-Hamiltonian guess density for a molecule/basis.
linalg::Matrix core_guess_density(const chem::BasisSet& basis,
                                  const chem::Molecule& mol,
                                  const linalg::Matrix& x);

}  // namespace mthfx::scf
