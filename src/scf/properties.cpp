#include "scf/properties.hpp"

#include <cmath>

#include "ints/one_electron.hpp"

namespace mthfx::scf {

using linalg::Matrix;

chem::Vec3 dipole_moment(const chem::Molecule& mol,
                         const chem::BasisSet& basis, const Matrix& density) {
  const chem::Vec3 com = mol.center_of_mass();
  chem::Vec3 mu{0, 0, 0};
  // Nuclear contribution.
  for (const chem::Atom& a : mol.atoms())
    mu = mu + static_cast<double>(a.z) * (a.pos - com);
  // Electronic contribution: -tr(P D_d).
  for (std::size_t d = 0; d < 3; ++d) {
    const Matrix dints = ints::dipole(basis, d, com);
    mu[d] -= linalg::trace_product(density, dints);
  }
  return mu;
}

double dipole_moment_debye(const chem::Molecule& mol,
                           const chem::BasisSet& basis,
                           const Matrix& density) {
  return chem::norm(dipole_moment(mol, basis, density)) * kDebyePerAu;
}

std::vector<double> mulliken_charges(const chem::Molecule& mol,
                                     const chem::BasisSet& basis,
                                     const Matrix& density) {
  const Matrix s = ints::overlap(basis);
  const Matrix ps = linalg::matmul(density, s);

  std::vector<double> charges(mol.size());
  for (std::size_t i = 0; i < mol.size(); ++i)
    charges[i] = static_cast<double>(mol.atom(i).z);
  for (std::size_t sh = 0; sh < basis.num_shells(); ++sh) {
    const std::size_t atom = basis.shell(sh).atom_index();
    const std::size_t o = basis.first_function(sh);
    for (std::size_t f = 0; f < basis.shell(sh).num_functions(); ++f)
      charges[atom] -= ps(o + f, o + f);
  }
  return charges;
}

}  // namespace mthfx::scf
