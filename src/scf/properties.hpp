#pragma once

// Molecular properties from a converged SCF density: dipole moments and
// Mulliken population analysis — the observables the electrolyte
// screening (experiment E6) reads off its solvents.

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::scf {

/// Electric dipole vector (atomic units; multiply by 2.541746 for Debye)
/// about the molecule's center of mass: nuclear part minus electronic
/// expectation value over the density matrix.
chem::Vec3 dipole_moment(const chem::Molecule& mol,
                         const chem::BasisSet& basis,
                         const linalg::Matrix& density);

/// |dipole| in Debye.
double dipole_moment_debye(const chem::Molecule& mol,
                           const chem::BasisSet& basis,
                           const linalg::Matrix& density);

/// Mulliken partial charges: q_A = Z_A - sum_{mu in A} (P S)_{mu mu}.
/// One entry per atom; entries sum to the molecular charge.
std::vector<double> mulliken_charges(const chem::Molecule& mol,
                                     const chem::BasisSet& basis,
                                     const linalg::Matrix& density);

inline constexpr double kDebyePerAu = 2.541746473;

}  // namespace mthfx::scf
