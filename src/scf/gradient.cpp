#include "scf/gradient.hpp"

#include <cmath>

#include "ints/deriv.hpp"

namespace mthfx::scf {

using chem::Vec3;
using linalg::Matrix;

std::vector<Vec3> nuclear_repulsion_gradient(const chem::Molecule& mol) {
  std::vector<Vec3> g(mol.size(), Vec3{0, 0, 0});
  for (std::size_t i = 0; i < mol.size(); ++i) {
    for (std::size_t j = 0; j < mol.size(); ++j) {
      if (i == j) continue;
      const Vec3 d = mol.atom(i).pos - mol.atom(j).pos;
      const double r = chem::norm(d);
      const double f = -static_cast<double>(mol.atom(i).z) *
                       static_cast<double>(mol.atom(j).z) / (r * r * r);
      g[i] = g[i] + f * d;
    }
  }
  return g;
}

std::vector<Vec3> rhf_gradient(const chem::Molecule& mol,
                               const chem::BasisSet& basis,
                               const ScfResult& result) {
  const std::size_t nao = basis.num_functions();
  const auto nocc = static_cast<std::size_t>(mol.num_electrons() / 2);
  const Matrix& p = result.density;

  // Energy-weighted density W = 2 sum_occ eps_i c_i c_i^T.
  Matrix w(nao, nao);
  for (std::size_t mu = 0; mu < nao; ++mu)
    for (std::size_t nu = 0; nu < nao; ++nu) {
      double v = 0.0;
      for (std::size_t o = 0; o < nocc; ++o)
        v += result.orbital_energies[o] * result.coefficients(mu, o) *
             result.coefficients(nu, o);
      w(mu, nu) = 2.0 * v;
    }

  std::vector<Vec3> grad = nuclear_repulsion_gradient(mol);

  // One-electron terms: P (dT + dV) and the Pulay term -W dS.
  for (std::size_t sa = 0; sa < basis.num_shells(); ++sa) {
    for (std::size_t sb = 0; sb < basis.num_shells(); ++sb) {
      const auto& a = basis.shell(sa);
      const auto& b = basis.shell(sb);
      const std::size_t oa = basis.first_function(sa);
      const std::size_t ob = basis.first_function(sb);

      const auto ds = ints::overlap_gradient_block(a, b);
      const auto dt = ints::kinetic_gradient_block(a, b);
      for (std::size_t d = 0; d < 3; ++d) {
        double acc_t = 0.0, acc_s = 0.0;
        for (std::size_t i = 0; i < ds[d].rows(); ++i)
          for (std::size_t j = 0; j < ds[d].cols(); ++j) {
            acc_t += p(oa + i, ob + j) * dt[d](i, j);
            acc_s += w(oa + i, ob + j) * ds[d](i, j);
          }
        // The blocks hold only the bra-center derivative. Because T, S,
        // P and W are symmetric, the ket-derivative sum over all ordered
        // pairs equals the bra-derivative sum, hence the factor 2.
        grad[a.atom_index()][d] += 2.0 * (acc_t - acc_s);
      }

      const auto dv = ints::nuclear_gradient_blocks(a, b, mol);
      for (std::size_t atom = 0; atom < mol.size(); ++atom)
        for (std::size_t d = 0; d < 3; ++d) {
          double acc = 0.0;
          for (std::size_t i = 0; i < dv[atom][d].rows(); ++i)
            for (std::size_t j = 0; j < dv[atom][d].cols(); ++j)
              acc += p(oa + i, ob + j) * dv[atom][d](i, j);
          grad[atom][d] += acc;
        }
    }
  }

  // Two-electron term: 1/2 sum Gamma d(mu nu|lam sig), Gamma = P P -
  // 1/2 P P (exchange pattern). All shell quartets are visited without
  // permutational folding — clarity over speed; the derivative centers
  // A, B, C are explicit and D follows from translational invariance.
  for (std::size_t sa = 0; sa < basis.num_shells(); ++sa) {
    const auto& a = basis.shell(sa);
    const std::size_t oa = basis.first_function(sa);
    for (std::size_t sb = 0; sb < basis.num_shells(); ++sb) {
      const auto& b = basis.shell(sb);
      const std::size_t ob = basis.first_function(sb);
      for (std::size_t sc = 0; sc < basis.num_shells(); ++sc) {
        const auto& c = basis.shell(sc);
        const std::size_t oc = basis.first_function(sc);
        for (std::size_t sd = 0; sd < basis.num_shells(); ++sd) {
          const auto& dsh = basis.shell(sd);
          const std::size_t od = basis.first_function(sd);

          const std::size_t centers[4] = {a.atom_index(), b.atom_index(),
                                          c.atom_index(), dsh.atom_index()};
          for (int center = 0; center < 3; ++center) {
            const auto dblk = ints::eri_gradient_block(a, b, c, dsh, center);
            std::size_t idx = 0;
            for (std::size_t i = 0; i < a.num_functions(); ++i)
              for (std::size_t j = 0; j < b.num_functions(); ++j)
                for (std::size_t k = 0; k < c.num_functions(); ++k)
                  for (std::size_t l = 0; l < dsh.num_functions(); ++l, ++idx) {
                    const double gamma =
                        p(oa + i, ob + j) * p(oc + k, od + l) -
                        0.5 * p(oa + i, oc + k) * p(ob + j, od + l);
                    if (gamma == 0.0) continue;
                    for (std::size_t d = 0; d < 3; ++d) {
                      const double contrib = 0.5 * gamma * dblk[d][idx];
                      grad[centers[static_cast<std::size_t>(center)]][d] +=
                          contrib;
                      // Translational invariance: the D-center derivative
                      // is minus the sum of A, B, C.
                      grad[centers[3]][d] -= contrib;
                    }
                  }
          }
        }
      }
    }
  }
  return grad;
}

}  // namespace mthfx::scf
