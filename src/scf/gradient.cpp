#include "scf/gradient.hpp"

#include <cmath>
#include <memory>

#include "dft/functionals.hpp"
#include "dft/grid.hpp"
#include "dft/xc_integrator.hpp"
#include "hfx/grad_contraction.hpp"
#include "ints/deriv.hpp"

namespace mthfx::scf {

using chem::Vec3;
using linalg::Matrix;

std::vector<Vec3> nuclear_repulsion_gradient(const chem::Molecule& mol) {
  std::vector<Vec3> g(mol.size(), Vec3{0, 0, 0});
  for (std::size_t i = 0; i < mol.size(); ++i) {
    for (std::size_t j = 0; j < mol.size(); ++j) {
      if (i == j) continue;
      const Vec3 d = mol.atom(i).pos - mol.atom(j).pos;
      const double r = chem::norm(d);
      const double f = -static_cast<double>(mol.atom(i).z) *
                       static_cast<double>(mol.atom(j).z) / (r * r * r);
      g[i] = g[i] + f * d;
    }
  }
  return g;
}

namespace {

// Energy-weighted density W = 2 sum_occ eps_i c_i c_i^T.
Matrix energy_weighted_density(const ScfResult& result, std::size_t nocc) {
  const std::size_t nao = result.density.rows();
  Matrix w(nao, nao);
  for (std::size_t mu = 0; mu < nao; ++mu)
    for (std::size_t nu = 0; nu < nao; ++nu) {
      double v = 0.0;
      for (std::size_t o = 0; o < nocc; ++o)
        v += result.orbital_energies[o] * result.coefficients(mu, o) *
             result.coefficients(nu, o);
      w(mu, nu) = 2.0 * v;
    }
  return w;
}

// One-electron terms P (dT + dV) and the Pulay term -W dS, accumulated
// into grad. Shared verbatim between the RHF and RKS surfaces.
void add_one_electron_gradient(const chem::Molecule& mol,
                               const chem::BasisSet& basis, const Matrix& p,
                               const Matrix& w, std::vector<Vec3>& grad) {
  for (std::size_t sa = 0; sa < basis.num_shells(); ++sa) {
    for (std::size_t sb = 0; sb < basis.num_shells(); ++sb) {
      const auto& a = basis.shell(sa);
      const auto& b = basis.shell(sb);
      const std::size_t oa = basis.first_function(sa);
      const std::size_t ob = basis.first_function(sb);

      const auto ds = ints::overlap_gradient_block(a, b);
      const auto dt = ints::kinetic_gradient_block(a, b);
      for (std::size_t d = 0; d < 3; ++d) {
        double acc_t = 0.0, acc_s = 0.0;
        for (std::size_t i = 0; i < ds[d].rows(); ++i)
          for (std::size_t j = 0; j < ds[d].cols(); ++j) {
            acc_t += p(oa + i, ob + j) * dt[d](i, j);
            acc_s += w(oa + i, ob + j) * ds[d](i, j);
          }
        // The blocks hold only the bra-center derivative. Because T, S,
        // P and W are symmetric, the ket-derivative sum over all ordered
        // pairs equals the bra-derivative sum, hence the factor 2.
        grad[a.atom_index()][d] += 2.0 * (acc_t - acc_s);
      }

      const auto dv = ints::nuclear_gradient_blocks(a, b, mol);
      for (std::size_t atom = 0; atom < mol.size(); ++atom)
        for (std::size_t d = 0; d < 3; ++d) {
          double acc = 0.0;
          for (std::size_t i = 0; i < dv[atom][d].rows(); ++i)
            for (std::size_t j = 0; j < dv[atom][d].cols(); ++j)
              acc += p(oa + i, ob + j) * dv[atom][d](i, j);
          grad[atom][d] += acc;
        }
    }
  }
}

}  // namespace

std::vector<Vec3> rhf_gradient(const chem::Molecule& mol,
                               const chem::BasisSet& basis,
                               const ScfResult& result) {
  const auto nocc = static_cast<std::size_t>(mol.num_electrons() / 2);
  const Matrix& p = result.density;
  const Matrix w = energy_weighted_density(result, nocc);

  std::vector<Vec3> grad = nuclear_repulsion_gradient(mol);
  add_one_electron_gradient(mol, basis, p, w, grad);

  hfx::GradContractionOptions gopt;
  gopt.ax = 1.0;
  const std::vector<Vec3> g2 = hfx::two_electron_gradient(basis, p, gopt);
  for (std::size_t a = 0; a < grad.size(); ++a) grad[a] = grad[a] + g2[a];
  return grad;
}

std::vector<Vec3> ks_gradient(const chem::Molecule& mol,
                              const chem::BasisSet& basis,
                              const KsOptions& options,
                              const KsResult& result) {
  const dft::Functional functional = dft::make_functional(options.functional);
  const bool semilocal = options.functional != "hf";
  const auto nocc = static_cast<std::size_t>(mol.num_electrons() / 2);
  const Matrix& p = result.scf.density;
  const Matrix w = energy_weighted_density(result.scf, nocc);

  std::vector<Vec3> grad = nuclear_repulsion_gradient(mol);
  add_one_electron_gradient(mol, basis, p, w, grad);

  // Two-electron term: Coulomb derivative always, exchange derivative
  // scaled by the functional's exact-exchange fraction. Reuse the shared
  // builder's screened pair list when one targets this basis (the MD
  // surface's cross-step path); otherwise build a fresh one.
  hfx::GradContractionOptions gopt;
  gopt.ax = functional.exact_exchange;
  gopt.eps_schwarz = options.scf.hfx.eps_schwarz;
  gopt.num_threads = options.scf.hfx.num_threads;
  const hfx::FockBuilder* shared = options.scf.shared_builder;
  const std::vector<Vec3> g2 =
      (shared && &shared->basis() == &basis)
          ? hfx::two_electron_gradient(basis, shared->pairs(), p, gopt)
          : hfx::two_electron_gradient(basis, p, gopt);
  for (std::size_t a = 0; a < grad.size(); ++a) grad[a] = grad[a] + g2[a];

  if (semilocal) {
    const dft::MolecularGrid grid(mol, options.grid);
    const dft::XcIntegrator xc(basis, grid);
    const std::vector<Vec3> gxc = xc.gradient(functional, p, mol);
    for (std::size_t a = 0; a < grad.size(); ++a) grad[a] = grad[a] + gxc[a];
  }
  return grad;
}

}  // namespace mthfx::scf
