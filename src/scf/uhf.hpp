#pragma once

// Unrestricted Hartree–Fock for open-shell species. The Li/air chemistry
// the paper simulates runs through genuinely open-shell intermediates
// (LiO2 and superoxide radicals); UHF extends the HFX machinery to them.

#include "scf/rhf.hpp"

namespace mthfx::scf {

struct UhfOptions {
  std::size_t max_iterations = 200;
  double energy_tolerance = 1e-9;
  double diis_tolerance = 1e-6;
  bool use_diis = true;
  /// Mix the alpha HOMO/LUMO of the initial guess to let the SCF break
  /// spin symmetry (needed e.g. for stretched closed-shell bonds).
  bool break_symmetry = false;
  /// Fraction of the previous density mixed into each new density while
  /// the DIIS error is still above `damping_until`; stabilizes
  /// oscillation-prone open-shell systems.
  double density_damping = 0.35;
  double damping_until = 0.05;
  /// Raise virtual orbitals by this amount (Hartree) via
  /// F -> F + shift (S - S P S); breaks occupation flip-flopping in
  /// near-degenerate open shells. 0 disables.
  double level_shift = 0.0;
  hfx::HfxOptions hfx;
  RecoveryOptions recovery;  ///< divergence detection / escalation

  /// Resume from a "uhf" checkpoint (densities, energy, DIIS history;
  /// see docs/resilience.md for what is and is not restored).
  std::shared_ptr<const fault::ScfCheckpoint> resume;
  /// Called with end-of-iteration state every `checkpoint_every` cycles.
  std::function<void(const fault::ScfCheckpoint&)> checkpoint_sink;
  std::size_t checkpoint_every = 1;
  /// Cooperative cancellation, polled at each iteration (see
  /// fault/cancel.hpp); the engine's deadline watchdog arms it.
  std::shared_ptr<const fault::CancelToken> cancel;
};

struct UhfResult {
  bool converged = false;
  double energy = 0.0;
  double nuclear_repulsion = 0.0;
  std::size_t iterations = 0;
  /// <S^2> expectation (exact value is S(S+1); excess = contamination).
  double s_squared = 0.0;
  linalg::Matrix density_alpha;  ///< P_a = C_a C_a^T (no factor 2)
  linalg::Matrix density_beta;
  linalg::Vector orbital_energies_alpha;
  linalg::Vector orbital_energies_beta;
  linalg::Matrix coefficients_alpha;
  linalg::Matrix coefficients_beta;
  /// Per-iteration energy/ΔE/DIIS-error/timing rows (same shape as RHF;
  /// quartets_computed sums both spin-channel builds).
  std::vector<ScfIterationLog> log;
  ScfDiagnostics diagnostics;  ///< recovery-ladder post-mortem

  linalg::Matrix total_density() const {
    return density_alpha + density_beta;
  }
  linalg::Matrix spin_density() const {
    return density_alpha - density_beta;
  }
};

/// Run UHF with `multiplicity` = 2S+1 (1 = singlet, 2 = doublet, ...).
/// Throws std::invalid_argument when the electron count and multiplicity
/// are inconsistent.
UhfResult uhf(const chem::Molecule& mol, const chem::BasisSet& basis,
              int multiplicity, const UhfOptions& options = {});

}  // namespace mthfx::scf
