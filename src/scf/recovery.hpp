#pragma once

// SCF divergence detection and staged recovery. The four SCF drivers
// feed every iteration's (energy, ΔE, DIIS error) into a RecoveryLadder;
// when the sequence looks divergent — non-finite numbers, a sustained
// ΔE sign oscillation, or DIIS error blowing up past its best value —
// the ladder escalates one stage at a time:
//
//   kNone -> kDiisReset -> kDamping -> kLevelShift
//
// Each stage's mitigation stays engaged for the rest of the solve (the
// stages are cumulative). Every escalation is recorded as a
// RecoveryEvent and surfaced through ScfResult::diagnostics, so a
// non-converged result explains itself instead of silently returning
// converged=false.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace mthfx::scf {

enum class RecoveryStage : std::uint8_t {
  kNone = 0,
  kDiisReset = 1,   ///< drop the (possibly poisoned) DIIS history
  kDamping = 2,     ///< mix previous density into each new density
  kLevelShift = 3,  ///< raise virtuals: F += shift (S - S P S)
};

const char* to_string(RecoveryStage stage);

struct RecoveryOptions {
  bool enabled = true;
  /// Iterations before divergence heuristics may fire (the first cycles
  /// of a core guess legitimately swing hard).
  std::size_t min_iterations = 2;
  /// Iterations to wait after an escalation before escalating again
  /// (gives the mitigation time to act). Non-finite values bypass this.
  std::size_t patience = 3;
  /// Consecutive ΔE sign flips (each above oscillation_floor) that count
  /// as an oscillation.
  std::size_t oscillation_flips = 4;
  double oscillation_floor = 1e-6;
  /// DIIS error exceeding growth * best-error-so-far counts as blow-up.
  double diis_growth = 1e3;
  /// Mitigation strengths applied when the stage engages.
  double damping = 0.5;
  double level_shift = 0.5;  ///< Hartree
};

struct RecoveryEvent {
  std::size_t iteration = 0;  ///< 0-based SCF iteration that triggered it
  RecoveryStage stage = RecoveryStage::kNone;  ///< stage entered
  std::string reason;
};

/// Post-mortem attached to every ScfResult/UhfResult.
struct ScfDiagnostics {
  bool finite = true;  ///< false if any iterate went NaN/Inf
  RecoveryStage final_stage = RecoveryStage::kNone;
  std::vector<RecoveryEvent> recovery_events;
  std::string failure_reason;  ///< empty unless the solve was abandoned
};

obs::Json to_json(const ScfDiagnostics& diagnostics);

class RecoveryLadder {
 public:
  explicit RecoveryLadder(RecoveryOptions options = {});

  /// Feed one iteration. Returns the stage newly entered this iteration
  /// (kNone when no escalation happened). `delta_e` is the raw
  /// energy difference to the previous iteration.
  RecoveryStage observe(std::size_t iteration, double energy, double delta_e,
                        double diis_error);

  RecoveryStage stage() const { return stage_; }

  /// True exactly once per kDiisReset (or deeper) entry: the driver must
  /// clear its DIIS history when this fires.
  bool consume_diis_reset();

  /// Density damping fraction to apply this iteration (0 below kDamping).
  double damping() const {
    return stage_ >= RecoveryStage::kDamping ? options_.damping : 0.0;
  }
  /// Level shift to apply this iteration (0 below kLevelShift).
  double level_shift() const {
    return stage_ >= RecoveryStage::kLevelShift ? options_.level_shift : 0.0;
  }

  /// True when a non-finite iterate arrived while already at the top of
  /// the ladder — the solve cannot recover and should abandon.
  bool exhausted() const { return exhausted_; }

  const std::vector<RecoveryEvent>& events() const { return events_; }
  bool saw_non_finite() const { return saw_non_finite_; }

 private:
  void escalate(std::size_t iteration, const std::string& reason);

  RecoveryOptions options_;
  RecoveryStage stage_ = RecoveryStage::kNone;
  std::vector<RecoveryEvent> events_;
  bool pending_diis_reset_ = false;
  bool exhausted_ = false;
  bool saw_non_finite_ = false;
  std::size_t last_escalation_ = 0;
  bool has_escalated_ = false;
  double best_diis_error_ = 0.0;
  bool has_diis_error_ = false;
  double prev_delta_e_ = 0.0;
  std::size_t flip_count_ = 0;
};

}  // namespace mthfx::scf
