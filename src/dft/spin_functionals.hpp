#pragma once

// Spin-polarized (unrestricted) exchange–correlation functionals:
// LSDA (Slater x + full PW92 c(rs, zeta)), spin-resolved PBE, and the
// PBE0 hybrid composition. These extend the closed-shell functionals in
// functionals.hpp to the open-shell species of the Li/air mechanism.
//
// Conventions: energy density per volume as a function of
// (rho_a, rho_b, sigma_aa, sigma_ab, sigma_bb) with
// sigma_xy = grad rho_x . grad rho_y.

#include <functional>
#include <string>

namespace mthfx::dft {

struct SpinDensity {
  double rho_a = 0.0, rho_b = 0.0;
  double sigma_aa = 0.0, sigma_ab = 0.0, sigma_bb = 0.0;

  double rho() const { return rho_a + rho_b; }
  double sigma() const { return sigma_aa + 2.0 * sigma_ab + sigma_bb; }
  double zeta() const {
    const double r = rho();
    return r > 0.0 ? (rho_a - rho_b) / r : 0.0;
  }
};

using SpinEnergyDensity = std::function<double(const SpinDensity&)>;

/// LSDA exchange via the exact spin-scaling relation
/// e_x(ra, rb) = [e_x^unpol(2 ra) + e_x^unpol(2 rb)] / 2.
double lsda_exchange_energy_density(const SpinDensity& d);

/// PW92 correlation energy per particle at (rs, zeta) — the full
/// parametrization with the spin-stiffness interpolation.
double pw92_eps_c_spin(double rs, double zeta);

/// PW92 correlation energy density for a spin density.
double pw92_correlation_energy_density_spin(const SpinDensity& d);

/// Spin-resolved PBE exchange (spin scaling of the enhancement factor).
double pbe_exchange_energy_density_spin(const SpinDensity& d);

/// Spin-resolved PBE correlation (phi(zeta) gradient coupling).
double pbe_correlation_energy_density_spin(const SpinDensity& d);

struct SpinFunctional {
  std::string name;
  SpinEnergyDensity energy_density;
  double exact_exchange = 0.0;
  bool needs_gradient = false;
};

/// Registry: "lda", "pbe", "pbe0", "hf" (spin-polarized forms).
SpinFunctional make_spin_functional(const std::string& name);

}  // namespace mthfx::dft
