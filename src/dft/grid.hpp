#pragma once

// Becke molecular integration grid (Becke, JCP 88, 2547 (1988)):
// atom-centered radial x Lebedev-angular product grids stitched together
// with fuzzy Voronoi weights (3 iterations of the smoothing polynomial,
// Bragg–Slater size adjustment).

#include <cstddef>
#include <vector>

#include "chem/molecule.hpp"

namespace mthfx::dft {

struct GridPoint {
  chem::Vec3 pos;      ///< Bohr
  double weight = 0.0; ///< full quadrature weight (radial x angular x Becke)
  std::size_t parent = 0;  ///< atom whose radial shell spawned this point
  double becke = 0.0;      ///< Becke partition weight P_parent at pos
};

struct GridOptions {
  int radial_points = 40;
  int angular_points = 38;  ///< a supported Lebedev count (or next larger)
  double radial_scale = 1.0;
};

class MolecularGrid {
 public:
  MolecularGrid(const chem::Molecule& mol, const GridOptions& options = {});

  const std::vector<GridPoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }

  /// Integrate a scalar field sampled by `f` over R^3.
  template <typename F>
  double integrate(F&& f) const {
    double s = 0.0;
    for (const GridPoint& p : points_) s += p.weight * f(p.pos);
    return s;
  }

 private:
  std::vector<GridPoint> points_;
};

/// Becke cell weight of atom `center` at point `p` (exposed for tests).
double becke_weight(const chem::Molecule& mol, std::size_t center,
                    const chem::Vec3& p);

/// Analytic derivative of the Becke partition weight: entry B of the
/// returned vector is dP_center/dR_B at *fixed* point p (the point is not
/// dragged along with any atom; the grid-point motion term is recovered
/// from translational invariance by the XC gradient). Matches
/// becke_weight including the smoothing iterations and the Bragg-radius
/// size adjustment.
std::vector<chem::Vec3> becke_weight_gradient(const chem::Molecule& mol,
                                              std::size_t center,
                                              const chem::Vec3& p);

}  // namespace mthfx::dft
