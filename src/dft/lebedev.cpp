#include "dft/lebedev.hpp"

#include <cmath>
#include <stdexcept>

namespace mthfx::dft {

namespace {

// Symmetry-orbit generators for octahedral Lebedev sets.

// 6 points: (+-1, 0, 0) permutations.
void add_a1(std::vector<AngularPoint>& g, double w) {
  for (int d = 0; d < 3; ++d)
    for (double s : {1.0, -1.0}) {
      AngularPoint p{0, 0, 0, w};
      (d == 0 ? p.x : d == 1 ? p.y : p.z) = s;
      g.push_back(p);
    }
}

// 12 points: (+-1/√2, +-1/√2, 0) permutations.
void add_a2(std::vector<AngularPoint>& g, double w) {
  const double m = 1.0 / std::sqrt(2.0);
  for (int d = 0; d < 3; ++d)
    for (double s1 : {1.0, -1.0})
      for (double s2 : {1.0, -1.0}) {
        AngularPoint p{0, 0, 0, w};
        if (d == 0) {
          p.y = s1 * m;
          p.z = s2 * m;
        } else if (d == 1) {
          p.x = s1 * m;
          p.z = s2 * m;
        } else {
          p.x = s1 * m;
          p.y = s2 * m;
        }
        g.push_back(p);
      }
}

// 8 points: (+-1/√3, +-1/√3, +-1/√3).
void add_a3(std::vector<AngularPoint>& g, double w) {
  const double m = 1.0 / std::sqrt(3.0);
  for (double s1 : {1.0, -1.0})
    for (double s2 : {1.0, -1.0})
      for (double s3 : {1.0, -1.0}) g.push_back({s1 * m, s2 * m, s3 * m, w});
}

// 24 points: (+-l, +-l, +-m) with 2l^2 + m^2 = 1, all position choices of m.
void add_c1(std::vector<AngularPoint>& g, double l, double w) {
  const double m = std::sqrt(std::max(0.0, 1.0 - 2.0 * l * l));
  for (int d = 0; d < 3; ++d)  // which axis carries m
    for (double s1 : {1.0, -1.0})
      for (double s2 : {1.0, -1.0})
        for (double s3 : {1.0, -1.0}) {
          AngularPoint p{0, 0, 0, w};
          const double vals[3] = {s1 * l, s2 * l, s3 * m};
          if (d == 0) {
            p.x = vals[2];
            p.y = vals[0];
            p.z = vals[1];
          } else if (d == 1) {
            p.x = vals[0];
            p.y = vals[2];
            p.z = vals[1];
          } else {
            p.x = vals[0];
            p.y = vals[1];
            p.z = vals[2];
          }
          g.push_back(p);
        }
}

// 24 points: (+-l, +-m, 0) permutations with l^2 + m^2 = 1.
void add_c2(std::vector<AngularPoint>& g, double l, double w) {
  const double m = std::sqrt(std::max(0.0, 1.0 - l * l));
  for (int d = 0; d < 3; ++d)     // zero axis
    for (int o = 0; o < 2; ++o)   // order of (l, m) on the other two
      for (double s1 : {1.0, -1.0})
        for (double s2 : {1.0, -1.0}) {
          const double u = s1 * (o == 0 ? l : m);
          const double v = s2 * (o == 0 ? m : l);
          AngularPoint p{0, 0, 0, w};
          if (d == 0) {
            p.y = u;
            p.z = v;
          } else if (d == 1) {
            p.x = u;
            p.z = v;
          } else {
            p.x = u;
            p.y = v;
          }
          g.push_back(p);
        }
}

}  // namespace

std::vector<AngularPoint> lebedev_grid(int num_points) {
  std::vector<AngularPoint> g;
  switch (num_points) {
    case 6:
      add_a1(g, 1.0 / 6.0);
      break;
    case 14:
      add_a1(g, 1.0 / 15.0);
      add_a3(g, 3.0 / 40.0);
      break;
    case 26:
      add_a1(g, 1.0 / 21.0);
      add_a2(g, 4.0 / 105.0);
      add_a3(g, 27.0 / 840.0);
      break;
    case 38:
      add_a1(g, 1.0 / 105.0);
      add_a3(g, 9.0 / 280.0);
      add_c2(g, 0.4597008433809831, 1.0 / 35.0);
      break;
    case 50:
      add_a1(g, 4.0 / 315.0);
      add_a2(g, 64.0 / 2835.0);
      add_a3(g, 27.0 / 1280.0);
      add_c1(g, 1.0 / std::sqrt(11.0), 14641.0 / 725760.0);
      break;
    default:
      throw std::invalid_argument("lebedev_grid: unsupported point count");
  }
  return g;
}

std::vector<AngularPoint> lebedev_grid_at_least(int min_points) {
  for (int n : kLebedevOrders)
    if (n >= min_points) return lebedev_grid(n);
  return lebedev_grid(kLebedevOrders.back());
}

}  // namespace mthfx::dft
