#include "dft/functionals.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mthfx::dft {

namespace {

constexpr double kPi = std::numbers::pi;

// PW92 e_c per particle at Wigner-Seitz radius rs (zeta = 0 channel).
double pw92_eps_c(double rs) {
  constexpr double a = 0.031091;
  constexpr double alpha1 = 0.21370;
  constexpr double beta1 = 7.5957;
  constexpr double beta2 = 3.5876;
  constexpr double beta3 = 1.6382;
  constexpr double beta4 = 0.49294;
  const double srs = std::sqrt(rs);
  const double q = 2.0 * a *
                   (beta1 * srs + beta2 * rs + beta3 * rs * srs +
                    beta4 * rs * rs);
  return -2.0 * a * (1.0 + alpha1 * rs) * std::log(1.0 + 1.0 / q);
}

}  // namespace

double lda_exchange_energy_density(double rho, double /*sigma*/) {
  if (rho <= 0.0) return 0.0;
  const double cx = 0.75 * std::cbrt(3.0 / kPi);
  return -cx * std::pow(rho, 4.0 / 3.0);
}

double pw92_correlation_energy_density(double rho, double /*sigma*/) {
  if (rho <= 0.0) return 0.0;
  const double rs = std::cbrt(3.0 / (4.0 * kPi * rho));
  return rho * pw92_eps_c(rs);
}

double pbe_exchange_energy_density(double rho, double sigma) {
  if (rho <= 0.0) return 0.0;
  constexpr double kappa = 0.804;
  constexpr double mu = 0.2195149727645171;
  const double kf = std::cbrt(3.0 * kPi * kPi * rho);
  const double grad = std::sqrt(std::max(0.0, sigma));
  const double s = grad / (2.0 * kf * rho);
  const double fx = 1.0 + kappa - kappa / (1.0 + mu * s * s / kappa);
  return lda_exchange_energy_density(rho, 0.0) * fx;
}

double pbe_correlation_energy_density(double rho, double sigma) {
  if (rho <= 0.0) return 0.0;
  constexpr double gamma = 0.031090690869654895;  // (1 - ln 2) / pi^2
  constexpr double beta = 0.06672455060314922;

  const double rs = std::cbrt(3.0 / (4.0 * kPi * rho));
  const double eps_c = pw92_eps_c(rs);

  const double kf = std::cbrt(3.0 * kPi * kPi * rho);
  const double ks = std::sqrt(4.0 * kf / kPi);
  const double grad = std::sqrt(std::max(0.0, sigma));
  const double t = grad / (2.0 * ks * rho);  // phi = 1 for zeta = 0

  const double expo = std::exp(-eps_c / gamma);
  double h = 0.0;
  if (expo != 1.0) {
    const double a_coef = beta / gamma / (expo - 1.0);
    const double t2 = t * t;
    const double num = 1.0 + a_coef * t2;
    const double den = 1.0 + a_coef * t2 + a_coef * a_coef * t2 * t2;
    h = gamma * std::log(1.0 + beta / gamma * t2 * num / den);
  }
  return rho * (eps_c + h);
}

Functional make_functional(const std::string& name) {
  if (name == "lda") {
    return {"lda",
            [](double rho, double sigma) {
              return lda_exchange_energy_density(rho, sigma) +
                     pw92_correlation_energy_density(rho, sigma);
            },
            0.0, false};
  }
  if (name == "pbe") {
    return {"pbe",
            [](double rho, double sigma) {
              return pbe_exchange_energy_density(rho, sigma) +
                     pbe_correlation_energy_density(rho, sigma);
            },
            0.0, true};
  }
  if (name == "pbe0") {
    return {"pbe0",
            [](double rho, double sigma) {
              return 0.75 * pbe_exchange_energy_density(rho, sigma) +
                     pbe_correlation_energy_density(rho, sigma);
            },
            0.25, true};
  }
  if (name == "hf") {
    return {"hf", [](double, double) { return 0.0; }, 1.0, false};
  }
  throw std::invalid_argument("make_functional: unknown functional " + name);
}

}  // namespace mthfx::dft
