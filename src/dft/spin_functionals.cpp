#include "dft/spin_functionals.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dft/functionals.hpp"

namespace mthfx::dft {

namespace {

constexpr double kPi = std::numbers::pi;

// PW92 G-function: -2A(1 + a1 rs) ln[1 + 1/(2A(b1 sqrt(rs) + b2 rs +
// b3 rs^{3/2} + b4 rs^2))].
double pw92_g(double rs, double a, double alpha1, double beta1, double beta2,
              double beta3, double beta4) {
  const double srs = std::sqrt(rs);
  const double q = 2.0 * a *
                   (beta1 * srs + beta2 * rs + beta3 * rs * srs +
                    beta4 * rs * rs);
  return -2.0 * a * (1.0 + alpha1 * rs) * std::log(1.0 + 1.0 / q);
}

// Spin interpolation function f(zeta) and f''(0).
double f_zeta(double zeta) {
  const double zp = std::pow(1.0 + zeta, 4.0 / 3.0);
  const double zm = std::pow(1.0 - zeta, 4.0 / 3.0);
  return (zp + zm - 2.0) / (2.0 * (std::cbrt(2.0) - 1.0));
}
constexpr double kFppZero = 1.7099209341613657;  // f''(0) = 8/(9(2^{1/3}-1))

}  // namespace

double lsda_exchange_energy_density(const SpinDensity& d) {
  return 0.5 * (lda_exchange_energy_density(2.0 * d.rho_a, 0.0) +
                lda_exchange_energy_density(2.0 * d.rho_b, 0.0));
}

double pw92_eps_c_spin(double rs, double zeta) {
  // ec0: unpolarized, ec1: fully polarized, -alpha_c: spin stiffness.
  const double ec0 =
      pw92_g(rs, 0.031091, 0.21370, 7.5957, 3.5876, 1.6382, 0.49294);
  const double ec1 =
      pw92_g(rs, 0.015545, 0.20548, 14.1189, 6.1977, 3.3662, 0.62517);
  const double neg_alpha =
      pw92_g(rs, 0.016887, 0.11125, 10.357, 3.6231, 0.88026, 0.49671);
  const double alpha_c = -neg_alpha;

  const double f = f_zeta(zeta);
  const double z4 = zeta * zeta * zeta * zeta;
  return ec0 + alpha_c * f / kFppZero * (1.0 - z4) + (ec1 - ec0) * f * z4;
}

double pw92_correlation_energy_density_spin(const SpinDensity& d) {
  const double rho = d.rho();
  if (rho <= 0.0) return 0.0;
  const double rs = std::cbrt(3.0 / (4.0 * kPi * rho));
  return rho * pw92_eps_c_spin(rs, d.zeta());
}

double pbe_exchange_energy_density_spin(const SpinDensity& d) {
  // Exact spin scaling: E_x[ra, rb] = (E_x[2ra] + E_x[2rb]) / 2, with
  // sigma scaling as 4 sigma_ss for the doubled density.
  return 0.5 * (pbe_exchange_energy_density(2.0 * d.rho_a, 4.0 * d.sigma_aa) +
                pbe_exchange_energy_density(2.0 * d.rho_b, 4.0 * d.sigma_bb));
}

double pbe_correlation_energy_density_spin(const SpinDensity& d) {
  const double rho = d.rho();
  if (rho <= 0.0) return 0.0;
  constexpr double gamma = 0.031090690869654895;
  constexpr double beta = 0.06672455060314922;

  const double rs = std::cbrt(3.0 / (4.0 * kPi * rho));
  const double zeta = std::clamp(d.zeta(), -1.0 + 1e-12, 1.0 - 1e-12);
  const double eps_c = pw92_eps_c_spin(rs, zeta);

  const double phi = 0.5 * (std::pow(1.0 + zeta, 2.0 / 3.0) +
                            std::pow(1.0 - zeta, 2.0 / 3.0));
  const double phi3 = phi * phi * phi;
  const double kf = std::cbrt(3.0 * kPi * kPi * rho);
  const double ks = std::sqrt(4.0 * kf / kPi);
  const double grad = std::sqrt(std::max(0.0, d.sigma()));
  const double t = grad / (2.0 * phi * ks * rho);

  const double expo = std::exp(-eps_c / (gamma * phi3));
  double h = 0.0;
  if (expo != 1.0) {
    const double a_coef = beta / gamma / (expo - 1.0);
    const double t2 = t * t;
    const double num = 1.0 + a_coef * t2;
    const double den = 1.0 + a_coef * t2 + a_coef * a_coef * t2 * t2;
    h = gamma * phi3 * std::log(1.0 + beta / gamma * t2 * num / den);
  }
  return rho * (eps_c + h);
}

SpinFunctional make_spin_functional(const std::string& name) {
  if (name == "lda") {
    return {"lda",
            [](const SpinDensity& d) {
              return lsda_exchange_energy_density(d) +
                     pw92_correlation_energy_density_spin(d);
            },
            0.0, false};
  }
  if (name == "pbe") {
    return {"pbe",
            [](const SpinDensity& d) {
              return pbe_exchange_energy_density_spin(d) +
                     pbe_correlation_energy_density_spin(d);
            },
            0.0, true};
  }
  if (name == "pbe0") {
    return {"pbe0",
            [](const SpinDensity& d) {
              return 0.75 * pbe_exchange_energy_density_spin(d) +
                     pbe_correlation_energy_density_spin(d);
            },
            0.25, true};
  }
  if (name == "hf") {
    return {"hf", [](const SpinDensity&) { return 0.0; }, 1.0, false};
  }
  throw std::invalid_argument("make_spin_functional: unknown functional " +
                              name);
}

}  // namespace mthfx::dft
