#include "dft/grid.hpp"

#include <cmath>
#include <numbers>

#include "chem/elements.hpp"
#include "dft/lebedev.hpp"

namespace mthfx::dft {

namespace {

// Becke's iterated smoothing polynomial p(p(p(mu))), p(mu) = 1.5mu - 0.5mu^3.
double becke_smooth(double mu) {
  for (int i = 0; i < 3; ++i) mu = 1.5 * mu - 0.5 * mu * mu * mu;
  return mu;
}

// Size-adjusted cell function between atoms i and j (Becke's appendix):
// nu_ij = mu_ij + a_ij (1 - mu_ij^2), a from the Bragg-radius ratio.
double size_adjustment(double r_i, double r_j) {
  const double chi = r_i / r_j;
  const double u = (chi - 1.0) / (chi + 1.0);
  double a = u / (u * u - 1.0);
  if (a > 0.5) a = 0.5;
  if (a < -0.5) a = -0.5;
  return a;
}

double cell_product(const chem::Molecule& mol, std::size_t center,
                    const chem::Vec3& p) {
  double prod = 1.0;
  const auto& atoms = mol.atoms();
  const double ri = chem::distance(p, atoms[center].pos);
  for (std::size_t j = 0; j < atoms.size(); ++j) {
    if (j == center) continue;
    const double rj = chem::distance(p, atoms[j].pos);
    const double rij = chem::distance(atoms[center].pos, atoms[j].pos);
    double mu = (ri - rj) / rij;
    const double rad_i = chem::element(atoms[center].z).bragg_radius_a;
    const double rad_j = chem::element(atoms[j].z).bragg_radius_a;
    mu = mu + size_adjustment(rad_i, rad_j) * (1.0 - mu * mu);
    prod *= 0.5 * (1.0 - becke_smooth(mu));
  }
  return prod;
}

}  // namespace

double becke_weight(const chem::Molecule& mol, std::size_t center,
                    const chem::Vec3& p) {
  double total = 0.0;
  for (std::size_t j = 0; j < mol.size(); ++j) total += cell_product(mol, j, p);
  if (total <= 0.0) return 0.0;
  return cell_product(mol, center, p) / total;
}

MolecularGrid::MolecularGrid(const chem::Molecule& mol,
                             const GridOptions& options) {
  const auto angular = lebedev_grid_at_least(options.angular_points);
  const int nr = options.radial_points;

  for (std::size_t a = 0; a < mol.size(); ++a) {
    const chem::Vec3& center = mol.atom(a).pos;
    // Becke's radial map r = R (1+x)/(1-x) over Gauss–Chebyshev (2nd kind)
    // nodes x_i = cos(i pi / (n+1)); the Jacobian folds the Chebyshev
    // weight and the map derivative into one closed form.
    const double rm = options.radial_scale *
                      chem::element(mol.atom(a).z).bragg_radius_a *
                      chem::kBohrPerAngstrom;
    for (int i = 1; i <= nr; ++i) {
      const double xi = std::cos(i * std::numbers::pi / (nr + 1));
      const double r = rm * (1.0 + xi) / (1.0 - xi);
      if (r < 1e-10) continue;
      const double sin2 = std::sin(i * std::numbers::pi / (nr + 1)) *
                          std::sin(i * std::numbers::pi / (nr + 1));
      // w_i = pi/(n+1) sin^2 * dr/dx / sqrt(1-x^2) * r^2, with
      // dr/dx = 2 rm / (1-x)^2 and sqrt(1-x^2) = sin(...).
      const double drdx = 2.0 * rm / ((1.0 - xi) * (1.0 - xi));
      const double wr = std::numbers::pi / (nr + 1) * sin2 /
                        std::sqrt(1.0 - xi * xi) * drdx * r * r;
      for (const AngularPoint& ap : angular) {
        GridPoint gp;
        gp.pos = center + chem::Vec3{r * ap.x, r * ap.y, r * ap.z};
        const double wb = becke_weight(mol, a, gp.pos);
        gp.weight = wr * 4.0 * std::numbers::pi * ap.weight * wb;
        if (gp.weight > 1e-16) points_.push_back(gp);
      }
    }
  }
}

}  // namespace mthfx::dft
