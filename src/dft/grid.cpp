#include "dft/grid.hpp"

#include <cmath>
#include <numbers>

#include "chem/elements.hpp"
#include "dft/lebedev.hpp"

namespace mthfx::dft {

namespace {

// Becke's iterated smoothing polynomial p(p(p(mu))), p(mu) = 1.5mu - 0.5mu^3.
double becke_smooth(double mu) {
  for (int i = 0; i < 3; ++i) mu = 1.5 * mu - 0.5 * mu * mu * mu;
  return mu;
}

// Size-adjusted cell function between atoms i and j (Becke's appendix):
// nu_ij = mu_ij + a_ij (1 - mu_ij^2), a from the Bragg-radius ratio.
double size_adjustment(double r_i, double r_j) {
  const double chi = r_i / r_j;
  const double u = (chi - 1.0) / (chi + 1.0);
  double a = u / (u * u - 1.0);
  if (a > 0.5) a = 0.5;
  if (a < -0.5) a = -0.5;
  return a;
}

double cell_product(const chem::Molecule& mol, std::size_t center,
                    const chem::Vec3& p) {
  double prod = 1.0;
  const auto& atoms = mol.atoms();
  const double ri = chem::distance(p, atoms[center].pos);
  for (std::size_t j = 0; j < atoms.size(); ++j) {
    if (j == center) continue;
    const double rj = chem::distance(p, atoms[j].pos);
    const double rij = chem::distance(atoms[center].pos, atoms[j].pos);
    double mu = (ri - rj) / rij;
    const double rad_i = chem::element(atoms[center].z).bragg_radius_a;
    const double rad_j = chem::element(atoms[j].z).bragg_radius_a;
    mu = mu + size_adjustment(rad_i, rad_j) * (1.0 - mu * mu);
    prod *= 0.5 * (1.0 - becke_smooth(mu));
  }
  return prod;
}

}  // namespace

double becke_weight(const chem::Molecule& mol, std::size_t center,
                    const chem::Vec3& p) {
  double total = 0.0;
  for (std::size_t j = 0; j < mol.size(); ++j) total += cell_product(mol, j, p);
  if (total <= 0.0) return 0.0;
  return cell_product(mol, center, p) / total;
}

std::vector<chem::Vec3> becke_weight_gradient(const chem::Molecule& mol,
                                              std::size_t center,
                                              const chem::Vec3& p) {
  const std::size_t n = mol.size();
  std::vector<chem::Vec3> grad(n, chem::Vec3{0, 0, 0});
  if (n < 2) return grad;
  const auto& atoms = mol.atoms();

  // Derivative of the iterated smoothing polynomial g(x) = p(p(p(x))),
  // p(x) = 1.5x - 0.5x^3, by the chain rule.
  auto smooth_deriv = [](double mu) {
    double d = 1.0;
    for (int i = 0; i < 3; ++i) {
      d *= 1.5 * (1.0 - mu * mu);
      mu = 1.5 * mu - 0.5 * mu * mu * mu;
    }
    return d;
  };

  std::vector<double> r(n);
  for (std::size_t i = 0; i < n; ++i) r[i] = chem::distance(p, atoms[i].pos);

  // Cell values s_jk and the scalar chain factor ds_jk/dmu_jk for every
  // ordered pair, plus the raw (unadjusted) mu and pair geometry.
  std::vector<double> s(n * n, 1.0), dsdmu(n * n, 0.0), mu_raw(n * n, 0.0),
      rij(n * n, 1.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      if (j == k) continue;
      const double d_jk = chem::distance(atoms[j].pos, atoms[k].pos);
      const double mu = (r[j] - r[k]) / d_jk;
      const double a = size_adjustment(chem::element(atoms[j].z).bragg_radius_a,
                                       chem::element(atoms[k].z).bragg_radius_a);
      const double nu = mu + a * (1.0 - mu * mu);
      s[j * n + k] = 0.5 * (1.0 - becke_smooth(nu));
      dsdmu[j * n + k] = -0.5 * smooth_deriv(nu) * (1.0 - 2.0 * a * mu);
      mu_raw[j * n + k] = mu;
      rij[j * n + k] = d_jk;
    }
  }

  // Cell products c_j and leave-one-out products via prefix/suffix scans
  // (never divides by a possibly tiny s value).
  std::vector<double> c(n, 1.0);
  std::vector<double> loo(n * n, 0.0);
  std::vector<double> prefix(n), suffix(n);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 1.0;
    for (std::size_t k = 0; k < n; ++k) {
      prefix[k] = acc;
      if (k != j) acc *= s[j * n + k];
    }
    c[j] = acc;
    acc = 1.0;
    for (std::size_t k = n; k-- > 0;) {
      suffix[k] = acc;
      if (k != j) acc *= s[j * n + k];
    }
    for (std::size_t k = 0; k < n; ++k)
      if (k != j) loo[j * n + k] = prefix[k] * suffix[k];
  }

  double total = 0.0;
  for (std::size_t j = 0; j < n; ++j) total += c[j];
  if (total <= 0.0) return grad;

  // dc[j * n + B] = dc_j/dR_B. Each pair (j,k) contributes to B = j and
  // B = k through dmu_jk/dR_j and dmu_jk/dR_k.
  std::vector<chem::Vec3> dc(n * n, chem::Vec3{0, 0, 0});
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      if (j == k) continue;
      const double t = loo[j * n + k] * dsdmu[j * n + k];
      if (t == 0.0) continue;
      const double d_jk = rij[j * n + k];
      const double mu = mu_raw[j * n + k];
      const chem::Vec3 e_jk = (1.0 / d_jk) * (atoms[j].pos - atoms[k].pos);
      // dmu/dR_j = -u_j/R_jk - mu e_jk/R_jk with u_j the unit vector from
      // atom j to the point; dmu/dR_k mirrors with the opposite signs.
      if (r[j] > 1e-14) {
        const chem::Vec3 u_j = (1.0 / r[j]) * (p - atoms[j].pos);
        dc[j * n + j] =
            dc[j * n + j] + t * ((-1.0 / d_jk) * u_j - (mu / d_jk) * e_jk);
      }
      if (r[k] > 1e-14) {
        const chem::Vec3 u_k = (1.0 / r[k]) * (p - atoms[k].pos);
        dc[j * n + k] =
            dc[j * n + k] + t * ((1.0 / d_jk) * u_k + (mu / d_jk) * e_jk);
      }
    }
  }

  // Quotient rule on P_center = c_center / sum_j c_j.
  for (std::size_t b = 0; b < n; ++b) {
    chem::Vec3 sum_dc{0, 0, 0};
    for (std::size_t j = 0; j < n; ++j) sum_dc = sum_dc + dc[j * n + b];
    grad[b] = (1.0 / total) * dc[center * n + b] -
              (c[center] / (total * total)) * sum_dc;
  }
  return grad;
}

MolecularGrid::MolecularGrid(const chem::Molecule& mol,
                             const GridOptions& options) {
  const auto angular = lebedev_grid_at_least(options.angular_points);
  const int nr = options.radial_points;

  for (std::size_t a = 0; a < mol.size(); ++a) {
    const chem::Vec3& center = mol.atom(a).pos;
    // Becke's radial map r = R (1+x)/(1-x) over Gauss–Chebyshev (2nd kind)
    // nodes x_i = cos(i pi / (n+1)); the Jacobian folds the Chebyshev
    // weight and the map derivative into one closed form.
    const double rm = options.radial_scale *
                      chem::element(mol.atom(a).z).bragg_radius_a *
                      chem::kBohrPerAngstrom;
    for (int i = 1; i <= nr; ++i) {
      const double xi = std::cos(i * std::numbers::pi / (nr + 1));
      const double r = rm * (1.0 + xi) / (1.0 - xi);
      if (r < 1e-10) continue;
      const double sin2 = std::sin(i * std::numbers::pi / (nr + 1)) *
                          std::sin(i * std::numbers::pi / (nr + 1));
      // w_i = pi/(n+1) sin^2 * dr/dx / sqrt(1-x^2) * r^2, with
      // dr/dx = 2 rm / (1-x)^2 and sqrt(1-x^2) = sin(...).
      const double drdx = 2.0 * rm / ((1.0 - xi) * (1.0 - xi));
      const double wr = std::numbers::pi / (nr + 1) * sin2 /
                        std::sqrt(1.0 - xi * xi) * drdx * r * r;
      for (const AngularPoint& ap : angular) {
        GridPoint gp;
        gp.pos = center + chem::Vec3{r * ap.x, r * ap.y, r * ap.z};
        const double wb = becke_weight(mol, a, gp.pos);
        gp.weight = wr * 4.0 * std::numbers::pi * ap.weight * wb;
        gp.parent = a;
        gp.becke = wb;
        if (gp.weight > 1e-16) points_.push_back(gp);
      }
    }
  }
}

}  // namespace mthfx::dft
