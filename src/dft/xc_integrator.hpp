#pragma once

// Numerical exchange–correlation integration over the Becke grid:
// E_xc = ∫ e_xc(rho, sigma) and the matching Kohn–Sham potential matrix
// V_xc[mu][nu] = ∫ [v_rho phi_mu phi_nu + 2 v_sigma (grad rho)·grad(phi_mu
// phi_nu)] with (v_rho, v_sigma) from central differences of e_xc.

#include "chem/basis.hpp"
#include "dft/functionals.hpp"
#include "dft/grid.hpp"
#include "dft/spin_functionals.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::dft {

struct XcResult {
  double energy = 0.0;
  linalg::Matrix v;              ///< nao x nao potential matrix
  double integrated_density = 0; ///< grid quality check: should equal N
};

struct XcSpinResult {
  double energy = 0.0;
  linalg::Matrix v_alpha;        ///< alpha Kohn-Sham potential matrix
  linalg::Matrix v_beta;
  double integrated_density = 0;
};

class XcIntegrator {
 public:
  XcIntegrator(const chem::BasisSet& basis, const MolecularGrid& grid);

  /// Evaluate E_xc and V_xc for the closed-shell density matrix P.
  XcResult integrate(const Functional& functional,
                     const linalg::Matrix& density) const;

  /// Spin-polarized evaluation from alpha/beta densities (no factor 2).
  XcSpinResult integrate_spin(const SpinFunctional& functional,
                              const linalg::Matrix& density_alpha,
                              const linalg::Matrix& density_beta) const;

  /// ∫ rho for a density matrix (electron-count check).
  double integrate_density(const linalg::Matrix& density) const;

  /// dE_xc/dR per atom at fixed density matrix P. Covers the
  /// basis-center (orbital) terms — with AO Hessians feeding the
  /// d(sigma)/dR part for GGAs — and the Becke partition-weight
  /// derivatives. Grid points ride on their parent atoms; the moving-
  /// point terms are folded in through translational invariance, so the
  /// total gradient sums to zero over atoms up to quadrature error.
  std::vector<chem::Vec3> gradient(const Functional& functional,
                                   const linalg::Matrix& density,
                                   const chem::Molecule& mol) const;

 private:
  const chem::BasisSet& basis_;
  const MolecularGrid& grid_;
  // Cached AO values and gradients per grid point (point-major).
  std::vector<double> ao_, ax_, ay_, az_;
};

}  // namespace mthfx::dft
