#pragma once

// Numerical exchange–correlation integration over the Becke grid:
// E_xc = ∫ e_xc(rho, sigma) and the matching Kohn–Sham potential matrix
// V_xc[mu][nu] = ∫ [v_rho phi_mu phi_nu + 2 v_sigma (grad rho)·grad(phi_mu
// phi_nu)] with (v_rho, v_sigma) from central differences of e_xc.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chem/basis.hpp"
#include "dft/functionals.hpp"
#include "dft/grid.hpp"
#include "dft/spin_functionals.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::dft {

struct XcResult {
  double energy = 0.0;
  linalg::Matrix v;              ///< nao x nao potential matrix
  double integrated_density = 0; ///< grid quality check: should equal N
};

struct XcSpinResult {
  double energy = 0.0;
  linalg::Matrix v_alpha;        ///< alpha Kohn-Sham potential matrix
  linalg::Matrix v_beta;
  double integrated_density = 0;
};

class XcIntegrator {
 public:
  /// With screen_basis = false every AO is cached and evaluated at every
  /// grid point (the historical dense behavior, bit-for-bit). With
  /// screen_basis = true only shells whose extent radius
  /// (hfx/cell_list.hpp) covers a point are cached, so the per-point
  /// density/potential loops run over the O(1) local AO set instead of
  /// all nao — the XC-side analogue of the distance-culled pair list.
  /// Dropped AO values sit below the shell-extent tail (~1e-14), well
  /// under the quadrature error.
  XcIntegrator(const chem::BasisSet& basis, const MolecularGrid& grid,
               bool screen_basis = false);

  /// Fraction of the dense np x nao AO table actually cached (1.0 in
  /// dense mode); observability for the screened path.
  double cached_fraction() const;

  /// Evaluate E_xc and V_xc for the closed-shell density matrix P.
  XcResult integrate(const Functional& functional,
                     const linalg::Matrix& density) const;

  /// Spin-polarized evaluation from alpha/beta densities (no factor 2).
  XcSpinResult integrate_spin(const SpinFunctional& functional,
                              const linalg::Matrix& density_alpha,
                              const linalg::Matrix& density_beta) const;

  /// ∫ rho for a density matrix (electron-count check).
  double integrate_density(const linalg::Matrix& density) const;

  /// dE_xc/dR per atom at fixed density matrix P. Covers the
  /// basis-center (orbital) terms — with AO Hessians feeding the
  /// d(sigma)/dR part for GGAs — and the Becke partition-weight
  /// derivatives. Grid points ride on their parent atoms; the moving-
  /// point terms are folded in through translational invariance, so the
  /// total gradient sums to zero over atoms up to quadrature error.
  std::vector<chem::Vec3> gradient(const Functional& functional,
                                   const linalg::Matrix& density,
                                   const chem::Molecule& mol) const;

 private:
  const chem::BasisSet& basis_;
  const MolecularGrid& grid_;
  bool screened_ = false;
  // Cached AO values and gradients per grid point, CSR-compressed:
  // point g owns entries [row_off_[g], row_off_[g+1]) of cols_ (AO
  // indices, ascending) and of the four value arrays. In dense mode
  // cols_ lists every AO at every point, which makes the loops below
  // walk in exactly the historical order.
  std::vector<std::size_t> row_off_;
  std::vector<std::uint32_t> cols_;
  std::vector<double> ao_, ax_, ay_, az_;
};

}  // namespace mthfx::dft
