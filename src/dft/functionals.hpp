#pragma once

// Closed-shell exchange–correlation functionals:
//   * Slater (LDA) exchange
//   * PW92 LDA correlation (the form PBE builds on)
//   * PBE GGA exchange and correlation
// plus the hybrid compositions used in the paper (PBE0 = 25% exact
// exchange + 75% PBE exchange + 100% PBE correlation).
//
// All functionals return the energy density per volume e_xc(rho, sigma)
// with sigma = |grad rho|^2; potentials (v_rho = d e/d rho, v_sigma =
// d e/d sigma) are produced by the integrator via high-order central
// differences, which keeps the closed-form code small and the derivative
// code impossible to get out of sync.

#include <functional>
#include <string>

namespace mthfx::dft {

/// Energy density per unit volume at (rho, sigma); rho is the *total*
/// closed-shell density.
using EnergyDensity = std::function<double(double rho, double sigma)>;

/// Slater LDA exchange: e_x = -Cx rho^{4/3}, Cx = (3/4)(3/pi)^{1/3}.
double lda_exchange_energy_density(double rho, double sigma);

/// PW92 LDA correlation (spin-unpolarized).
double pw92_correlation_energy_density(double rho, double sigma);

/// PBE exchange (Perdew, Burke, Ernzerhof 1996).
double pbe_exchange_energy_density(double rho, double sigma);

/// PBE correlation.
double pbe_correlation_energy_density(double rho, double sigma);

struct Functional {
  std::string name;
  EnergyDensity energy_density;   ///< semilocal part
  double exact_exchange = 0.0;    ///< fraction of HFX mixed in
  bool needs_gradient = false;    ///< GGA?
};

/// Registry: "lda" (Slater x + PW92 c), "pbe", "pbe0", "hf" (pure HFX,
/// zero semilocal part). Throws std::invalid_argument for unknown names.
Functional make_functional(const std::string& name);

}  // namespace mthfx::dft
