#include "dft/xc_integrator.hpp"

#include <algorithm>
#include <cmath>

#include "hfx/cell_list.hpp"

namespace mthfx::dft {

using linalg::Matrix;

XcIntegrator::XcIntegrator(const chem::BasisSet& basis,
                           const MolecularGrid& grid, bool screen_basis)
    : basis_(basis), grid_(grid), screened_(screen_basis) {
  const std::size_t ns = basis.num_shells();
  const std::size_t np = grid.size();
  std::vector<double> radius2(ns, 0.0);
  if (screened_) {
    const std::vector<double> radii = hfx::shell_extent_radii(basis);
    for (std::size_t s = 0; s < ns; ++s) radius2[s] = radii[s] * radii[s];
  }

  row_off_.reserve(np + 1);
  row_off_.push_back(0);
  std::vector<double> val(6), dx(6), dy(6), dz(6);  // per-shell scratch
  for (std::size_t g = 0; g < np; ++g) {
    const chem::Vec3 pos = grid.points()[g].pos;
    for (std::size_t s = 0; s < ns; ++s) {
      const chem::Shell& sh = basis.shell(s);
      if (screened_) {
        const chem::Vec3 d = pos - sh.center();
        if (chem::dot(d, d) > radius2[s]) continue;
      }
      const std::size_t nf = sh.num_functions();
      if (val.size() < nf) {
        val.resize(nf);
        dx.resize(nf);
        dy.resize(nf);
        dz.resize(nf);
      }
      basis.evaluate_shell_with_gradient(s, pos, val.data(), dx.data(),
                                         dy.data(), dz.data());
      const std::size_t base = basis.first_function(s);
      for (std::size_t c = 0; c < nf; ++c) {
        cols_.push_back(static_cast<std::uint32_t>(base + c));
        ao_.push_back(val[c]);
        ax_.push_back(dx[c]);
        ay_.push_back(dy[c]);
        az_.push_back(dz[c]);
      }
    }
    row_off_.push_back(cols_.size());
  }
}

double XcIntegrator::cached_fraction() const {
  const double dense = static_cast<double>(grid_.size()) *
                       static_cast<double>(basis_.num_functions());
  return dense > 0.0 ? static_cast<double>(cols_.size()) / dense : 1.0;
}

double XcIntegrator::integrate_density(const Matrix& density) const {
  double n = 0.0;
  std::vector<double> pphi(basis_.num_functions());
  for (std::size_t g = 0; g < grid_.size(); ++g) {
    const std::size_t nloc = row_off_[g + 1] - row_off_[g];
    const double* phi = ao_.data() + row_off_[g];
    const std::uint32_t* idx = cols_.data() + row_off_[g];
    double rho = 0.0;
    for (std::size_t mu = 0; mu < nloc; ++mu) {
      double t = 0.0;
      for (std::size_t nu = 0; nu < nloc; ++nu)
        t += density(idx[mu], idx[nu]) * phi[nu];
      rho += t * phi[mu];
    }
    n += grid_.points()[g].weight * rho;
  }
  return n;
}

XcResult XcIntegrator::integrate(const Functional& functional,
                                 const Matrix& density) const {
  const std::size_t nao = basis_.num_functions();
  XcResult result;
  result.v = Matrix(nao, nao);

  std::vector<double> pphi(nao);  // (P phi) at the current point

  for (std::size_t g = 0; g < grid_.size(); ++g) {
    const double w = grid_.points()[g].weight;
    const std::size_t nloc = row_off_[g + 1] - row_off_[g];
    const double* phi = ao_.data() + row_off_[g];
    const double* gx = ax_.data() + row_off_[g];
    const double* gy = ay_.data() + row_off_[g];
    const double* gz = az_.data() + row_off_[g];
    const std::uint32_t* idx = cols_.data() + row_off_[g];

    double rho = 0.0;
    for (std::size_t mu = 0; mu < nloc; ++mu) {
      double t = 0.0;
      for (std::size_t nu = 0; nu < nloc; ++nu)
        t += density(idx[mu], idx[nu]) * phi[nu];
      pphi[mu] = t;
      rho += t * phi[mu];
    }
    if (rho < 1e-12) continue;
    result.integrated_density += w * rho;

    // grad rho = 2 (P phi) . grad phi.
    double drx = 0.0, dry = 0.0, drz = 0.0;
    if (functional.needs_gradient) {
      for (std::size_t mu = 0; mu < nloc; ++mu) {
        drx += 2.0 * pphi[mu] * gx[mu];
        dry += 2.0 * pphi[mu] * gy[mu];
        drz += 2.0 * pphi[mu] * gz[mu];
      }
    }
    const double sigma = drx * drx + dry * dry + drz * drz;

    const double e = functional.energy_density(rho, sigma);
    result.energy += w * e;

    // Central-difference potentials.
    const double hr = std::max(1e-9, 1e-6 * rho);
    const double vrho = (functional.energy_density(rho + hr, sigma) -
                         functional.energy_density(rho - hr, sigma)) /
                        (2.0 * hr);
    double vsigma = 0.0;
    if (functional.needs_gradient && sigma > 1e-24) {
      const double hs = std::max(1e-12, 1e-6 * sigma);
      vsigma = (functional.energy_density(rho, sigma + hs) -
                functional.energy_density(rho, sigma - hs)) /
               (2.0 * hs);
    }

    // Symmetric rank-2 update: V += t phi^T + phi t^T with
    // t = (w vrho / 2) phi + (2 w vsigma) (grad rho . grad phi).
    for (std::size_t mu = 0; mu < nloc; ++mu) {
      const double d = drx * gx[mu] + dry * gy[mu] + drz * gz[mu];
      const double t = 0.5 * w * vrho * phi[mu] + 2.0 * w * vsigma * d;
      if (t == 0.0) continue;
      for (std::size_t nu = 0; nu < nloc; ++nu) {
        result.v(idx[mu], idx[nu]) += t * phi[nu];
        result.v(idx[nu], idx[mu]) += t * phi[nu];
      }
    }
  }
  return result;
}


std::vector<chem::Vec3> XcIntegrator::gradient(const Functional& functional,
                                               const Matrix& density,
                                               const chem::Molecule& mol) const {
  const std::size_t nao = basis_.num_functions();
  std::vector<chem::Vec3> grad(mol.size(), chem::Vec3{0, 0, 0});

  // AO index -> owning atom.
  std::vector<std::size_t> atom_of(nao, 0);
  for (std::size_t s = 0; s < basis_.num_shells(); ++s) {
    const chem::Shell& sh = basis_.shell(s);
    const std::size_t base = basis_.first_function(s);
    for (std::size_t c = 0; c < sh.num_functions(); ++c)
      atom_of[base + c] = sh.atom_index();
  }

  std::vector<double> val, d1x, d1y, d1z, hxx, hxy, hxz, hyy, hyz, hzz;
  std::vector<double> pphi(nao), pgx(nao), pgy(nao), pgz(nao);

  for (std::size_t g = 0; g < grid_.size(); ++g) {
    const GridPoint& gp = grid_.points()[g];
    const double w = gp.weight;
    basis_.evaluate_with_hessian(gp.pos, val, d1x, d1y, d1z, hxx, hxy, hxz,
                                 hyy, hyz, hzz);

    double rho = 0.0;
    for (std::size_t mu = 0; mu < nao; ++mu) {
      double t = 0.0, tx = 0.0, ty = 0.0, tz = 0.0;
      for (std::size_t nu = 0; nu < nao; ++nu) {
        const double pmn = density(mu, nu);
        t += pmn * val[nu];
        tx += pmn * d1x[nu];
        ty += pmn * d1y[nu];
        tz += pmn * d1z[nu];
      }
      pphi[mu] = t;
      pgx[mu] = tx;
      pgy[mu] = ty;
      pgz[mu] = tz;
      rho += t * val[mu];
    }
    if (rho < 1e-12) continue;

    double drx = 0.0, dry = 0.0, drz = 0.0;
    if (functional.needs_gradient) {
      for (std::size_t mu = 0; mu < nao; ++mu) {
        drx += 2.0 * pphi[mu] * d1x[mu];
        dry += 2.0 * pphi[mu] * d1y[mu];
        drz += 2.0 * pphi[mu] * d1z[mu];
      }
    }
    const double sigma = drx * drx + dry * dry + drz * drz;

    const double e = functional.energy_density(rho, sigma);

    // Same central-difference potentials the SCF-side integrate() uses,
    // so the gradient is consistent with the converged V_xc.
    const double hr = std::max(1e-9, 1e-6 * rho);
    const double vrho = (functional.energy_density(rho + hr, sigma) -
                         functional.energy_density(rho - hr, sigma)) /
                        (2.0 * hr);
    double vsigma = 0.0;
    if (functional.needs_gradient && sigma > 1e-24) {
      const double hs = std::max(1e-12, 1e-6 * sigma);
      vsigma = (functional.energy_density(rho, sigma + hs) -
                functional.energy_density(rho, sigma - hs)) /
               (2.0 * hs);
    }

    // Orbital terms: X_C = vrho drho/dR_C + vsigma dsigma/dR_C at fixed
    // point, accumulated per owning atom; the grid point riding on its
    // parent atom contributes -sum_C X_C there (translational
    // invariance of rho and sigma under a rigid shift).
    chem::Vec3 x_total{0, 0, 0};
    for (std::size_t mu = 0; mu < nao; ++mu) {
      const chem::Vec3 dphi{d1x[mu], d1y[mu], d1z[mu]};
      // (Hessian of phi_mu) . grad rho
      const chem::Vec3 hdr{
          hxx[mu] * drx + hxy[mu] * dry + hxz[mu] * drz,
          hxy[mu] * drx + hyy[mu] * dry + hyz[mu] * drz,
          hxz[mu] * drx + hyz[mu] * dry + hzz[mu] * drz};
      const double gdotpg = drx * pgx[mu] + dry * pgy[mu] + drz * pgz[mu];
      const chem::Vec3 x_mu =
          (-2.0 * vrho * pphi[mu]) * dphi +
          (-4.0 * vsigma) * (pphi[mu] * hdr + gdotpg * dphi);
      grad[atom_of[mu]] = grad[atom_of[mu]] + w * x_mu;
      x_total = x_total + x_mu;
    }
    grad[gp.parent] = grad[gp.parent] - w * x_total;

    // Grid-weight term: w = w0 * P_parent with w0 the (geometry-
    // independent) radial x angular weight. dP uses the same
    // translational-invariance correction for the moving point.
    if (gp.becke > 0.0 && mol.size() > 1) {
      const double w0 = w / gp.becke;
      const auto dp = becke_weight_gradient(mol, gp.parent, gp.pos);
      chem::Vec3 dp_total{0, 0, 0};
      for (std::size_t b = 0; b < mol.size(); ++b) {
        grad[b] = grad[b] + (w0 * e) * dp[b];
        dp_total = dp_total + dp[b];
      }
      grad[gp.parent] = grad[gp.parent] - (w0 * e) * dp_total;
    }
  }
  return grad;
}

XcSpinResult XcIntegrator::integrate_spin(const SpinFunctional& functional,
                                          const Matrix& density_alpha,
                                          const Matrix& density_beta) const {
  const std::size_t nao = basis_.num_functions();
  XcSpinResult result;
  result.v_alpha = Matrix(nao, nao);
  result.v_beta = Matrix(nao, nao);

  std::vector<double> pa_phi(nao), pb_phi(nao);

  for (std::size_t g = 0; g < grid_.size(); ++g) {
    const double w = grid_.points()[g].weight;
    const std::size_t nloc = row_off_[g + 1] - row_off_[g];
    const double* phi = ao_.data() + row_off_[g];
    const double* gx = ax_.data() + row_off_[g];
    const double* gy = ay_.data() + row_off_[g];
    const double* gz = az_.data() + row_off_[g];
    const std::uint32_t* idx = cols_.data() + row_off_[g];

    SpinDensity d;
    for (std::size_t mu = 0; mu < nloc; ++mu) {
      double ta = 0.0, tb = 0.0;
      for (std::size_t nu = 0; nu < nloc; ++nu) {
        ta += density_alpha(idx[mu], idx[nu]) * phi[nu];
        tb += density_beta(idx[mu], idx[nu]) * phi[nu];
      }
      pa_phi[mu] = ta;
      pb_phi[mu] = tb;
      d.rho_a += ta * phi[mu];
      d.rho_b += tb * phi[mu];
    }
    if (d.rho() < 1e-12) continue;
    result.integrated_density += w * d.rho();

    double gax = 0, gay = 0, gaz = 0, gbx = 0, gby = 0, gbz = 0;
    if (functional.needs_gradient) {
      for (std::size_t mu = 0; mu < nloc; ++mu) {
        gax += 2.0 * pa_phi[mu] * gx[mu];
        gay += 2.0 * pa_phi[mu] * gy[mu];
        gaz += 2.0 * pa_phi[mu] * gz[mu];
        gbx += 2.0 * pb_phi[mu] * gx[mu];
        gby += 2.0 * pb_phi[mu] * gy[mu];
        gbz += 2.0 * pb_phi[mu] * gz[mu];
      }
      d.sigma_aa = gax * gax + gay * gay + gaz * gaz;
      d.sigma_bb = gbx * gbx + gby * gby + gbz * gbz;
      d.sigma_ab = gax * gbx + gay * gby + gaz * gbz;
    }

    const double e = functional.energy_density(d);
    result.energy += w * e;

    // Central-difference potentials over the five variables.
    auto deriv = [&](auto mutate, double scale_hint) {
      const double h = std::max(1e-10, 1e-6 * std::abs(scale_hint));
      SpinDensity dp = d, dm = d;
      mutate(dp, h);
      mutate(dm, -h);
      return (functional.energy_density(dp) - functional.energy_density(dm)) /
             (2.0 * h);
    };
    const double vra =
        deriv([](SpinDensity& s, double h) { s.rho_a += h; }, d.rho());
    const double vrb =
        deriv([](SpinDensity& s, double h) { s.rho_b += h; }, d.rho());
    double vsaa = 0, vsbb = 0, vsab = 0;
    if (functional.needs_gradient) {
      const double shint = std::max(1e-8, d.sigma());
      vsaa = deriv([](SpinDensity& s, double h) { s.sigma_aa += h; }, shint);
      vsbb = deriv([](SpinDensity& s, double h) { s.sigma_bb += h; }, shint);
      vsab = deriv([](SpinDensity& s, double h) { s.sigma_ab += h; }, shint);
    }

    // V_a += w [vra phi phi^T + (2 vsaa grad_a + vsab grad_b).(grad(phi)
    // phi^T + phi grad(phi)^T)]; same for beta with labels swapped.
    for (std::size_t mu = 0; mu < nloc; ++mu) {
      const double da = gax * gx[mu] + gay * gy[mu] + gaz * gz[mu];
      const double db = gbx * gx[mu] + gby * gy[mu] + gbz * gz[mu];
      const double ta =
          0.5 * w * vra * phi[mu] + w * (2.0 * vsaa * da + vsab * db);
      const double tb =
          0.5 * w * vrb * phi[mu] + w * (2.0 * vsbb * db + vsab * da);
      for (std::size_t nu = 0; nu < nloc; ++nu) {
        if (ta != 0.0) {
          result.v_alpha(idx[mu], idx[nu]) += ta * phi[nu];
          result.v_alpha(idx[nu], idx[mu]) += ta * phi[nu];
        }
        if (tb != 0.0) {
          result.v_beta(idx[mu], idx[nu]) += tb * phi[nu];
          result.v_beta(idx[nu], idx[mu]) += tb * phi[nu];
        }
      }
    }
  }
  return result;
}

}  // namespace mthfx::dft
