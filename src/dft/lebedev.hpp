#pragma once

// Lebedev–Laikov angular quadrature on the unit sphere for the octahedral
// orders with exact rational weights: 6, 14, 26, 38 and 50 points
// (exact for spherical harmonics up to l = 3, 5, 7, 9, 11 respectively).
// Weights are normalized to sum to 1 (multiply by 4π for the surface
// integral).

#include <array>
#include <vector>

namespace mthfx::dft {

struct AngularPoint {
  double x = 0.0, y = 0.0, z = 0.0;
  double weight = 0.0;  ///< normalized: Σ w = 1
};

/// Supported point counts.
inline constexpr std::array<int, 5> kLebedevOrders{6, 14, 26, 38, 50};

/// The grid with exactly `num_points` points. Throws std::invalid_argument
/// for unsupported counts.
std::vector<AngularPoint> lebedev_grid(int num_points);

/// Smallest supported grid with at least `min_points` points (clamps to 50).
std::vector<AngularPoint> lebedev_grid_at_least(int min_points);

}  // namespace mthfx::dft
