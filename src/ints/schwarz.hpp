#pragma once

// Schwarz (Cauchy–Schwarz) screening bounds:
//   |(ab|cd)| <= sqrt((ab|ab)) * sqrt((cd|cd)).
// The per-shell-pair bound table Q_ab = max over components of
// sqrt((ab|ab)) is the first screening stage of the HFX build and of the
// paper's "highly controllable" accuracy knob.

#include "chem/basis.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::ints {

/// Q(sa, sb) = max_{i in sa, j in sb} sqrt((ij|ij)), a symmetric
/// (num_shells x num_shells) table.
linalg::Matrix schwarz_bounds(const chem::BasisSet& basis);

/// One entry of the table above — used by FockBuilder::rebind to refresh
/// only the pairs whose shell centers actually moved.
double schwarz_bound(const chem::Shell& a, const chem::Shell& b);

/// As above, but also reports whether the diagonal (ab|ab) underflowed to
/// the noise floor. A floored bound q ≈ sqrt(noise) is an *overestimate*
/// of the true diagonal, so keeping the pair under the eps rule is
/// conservative — and necessary: the pair's cross quartets (ab|cd) with
/// a strong partner survive the kernel's primitive cutoff at the
/// sqrt(noise)·q_cd scale even though every term of (ab|ab) truncates.
/// The pair-list builds (hfx/shell_pairs.hpp) drop a pair outright only
/// when it is beyond summed extent radii (hfx/cell_list.hpp), where the
/// Gaussian-product factor kills every partner combination.
double schwarz_bound(const chem::Shell& a, const chem::Shell& b,
                     bool* floored);

}  // namespace mthfx::ints
