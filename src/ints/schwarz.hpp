#pragma once

// Schwarz (Cauchy–Schwarz) screening bounds:
//   |(ab|cd)| <= sqrt((ab|ab)) * sqrt((cd|cd)).
// The per-shell-pair bound table Q_ab = max over components of
// sqrt((ab|ab)) is the first screening stage of the HFX build and of the
// paper's "highly controllable" accuracy knob.

#include "chem/basis.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::ints {

/// Q(sa, sb) = max_{i in sa, j in sb} sqrt((ij|ij)), a symmetric
/// (num_shells x num_shells) table.
linalg::Matrix schwarz_bounds(const chem::BasisSet& basis);

/// One entry of the table above — used by FockBuilder::rebind to refresh
/// only the pairs whose shell centers actually moved.
double schwarz_bound(const chem::Shell& a, const chem::Shell& b);

}  // namespace mthfx::ints
