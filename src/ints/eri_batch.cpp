#include "ints/eri_batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "ints/boys.hpp"
#include "ints/simd.hpp"

namespace mthfx::ints {

namespace {

constexpr std::size_t kW = kBoysBatchWidth;

// Per-thread scratch, grow-only so the hot path never allocates warm.
struct BatchScratch {
  // Packed per-primitive lane data, SoA: value index e, lane w at
  // [e * kW + w]. Entry *values* are lane data; entry coordinates are
  // shared batch structure read from lane 0's pair.
  std::vector<double> bra_vals;    // [bra prim entries][lane] (val)
  std::vector<double> ket_svals;   // [ket prim entries][lane] (sval)
  std::vector<std::size_t> ent_off_b, ent_off_k;  // per-prim entry offsets
  std::vector<double> bp_p, bp_x, bp_y, bp_z, bp_me;  // [prim * kW + w]
  std::vector<double> kp_p, kp_x, kp_y, kp_z, kp_me;
  std::vector<std::uint32_t> rbase;  // union point -> flat R offset
  std::vector<double> r_a, r_b;      // ping-pong R slices, [offset][lane]
  std::vector<double> panel;         // [ket comp][union point][lane]
};

thread_local BatchScratch tls;

}  // namespace

// Friend of ShellPairHermite: implements interning, batch packing and
// the lane-parallel kernel stages.
class BatchedEri {
 public:
  static void run(std::span<const QuartetRef> stream, EriBlock* out) {
    const std::size_t n = stream.size();
    if (n == 0) return;

    // Intern each distinct pair pointer to a structural class id. The
    // memoization is per call on purpose: pair objects are rebuilt
    // between Fock builds and addresses can be recycled, so a
    // cross-call pointer cache could silently alias two generations.
    std::unordered_map<const ShellPairHermite*, std::uint32_t> memo;
    std::vector<const ShellPairHermite*> reps;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_key;
    const auto intern = [&](const ShellPairHermite* p) -> std::uint32_t {
      const auto it = memo.find(p);
      if (it != memo.end()) return it->second;
      std::uint32_t id = 0;
      bool found = false;
      std::vector<std::uint32_t>& cands = by_key[p->structure_key()];
      for (const std::uint32_t c : cands)
        if (same_structure(*p, *reps[c])) {
          id = c;
          found = true;
          break;
        }
      if (!found) {
        id = static_cast<std::uint32_t>(reps.size());
        reps.push_back(p);
        cands.push_back(id);
      }
      memo.emplace(p, id);
      return id;
    };

    // Sort key: (bra class, ket class). Ids are assigned in first-seen
    // stream order and the sort is stable, so batch composition is a
    // pure function of the stream.
    std::vector<std::uint64_t> key(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t cb = intern(stream[i].bra);
      const std::uint64_t ck = intern(stream[i].ket);
      key[i] = (cb << 32) | ck;
    }
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&key](std::uint32_t a, std::uint32_t b) {
                       return key[a] < key[b];
                     });

    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i + 1;
      while (j < n && j - i < kW && key[order[j]] == key[order[i]]) ++j;
      eval_batch(stream, order.data() + i, j - i, out);
      i = j;
    }
  }

 private:
  // Full structural equality — the hash key only pre-filters. Everything
  // that shapes control flow and indexing must match; coefficient values
  // (val/sval, exponents, centers) are lane data and deliberately don't.
  static bool same_structure(const ShellPairHermite& x,
                             const ShellPairHermite& y) {
    if (x.lab_ != y.lab_ || x.na_ != y.na_ || x.nb_ != y.nb_ ||
        x.prims_.size() != y.prims_.size() ||
        x.union_coords_.size() != y.union_coords_.size())
      return false;
    for (std::size_t u = 0; u < x.union_coords_.size(); ++u) {
      const HermiteCoord a = x.union_coords_[u];
      const HermiteCoord b = y.union_coords_[u];
      if (a.t != b.t || a.u != b.u || a.v != b.v) return false;
    }
    for (std::size_t p = 0; p < x.prims_.size(); ++p) {
      const auto& xp = x.prims_[p];
      const auto& yp = y.prims_[p];
      if (xp.entries.size() != yp.entries.size() ||
          xp.comp_begin != yp.comp_begin)
        return false;
      for (std::size_t e = 0; e < xp.entries.size(); ++e) {
        const HermiteEntry& a = xp.entries[e];
        const HermiteEntry& b = yp.entries[e];
        if (a.t != b.t || a.u != b.u || a.v != b.v || a.upos != b.upos)
          return false;
      }
    }
    return true;
  }

  static void eval_batch(std::span<const QuartetRef> stream,
                         const std::uint32_t* idx, std::size_t nw,
                         EriBlock* out) {
    // Lane tables; ragged tails replicate lane 0 (prefactor forced to 0
    // below, final writes guarded by w < nw).
    const ShellPairHermite* B[kW];
    const ShellPairHermite* K[kW];
    for (std::size_t w = 0; w < kW; ++w) {
      const QuartetRef& q = stream[idx[w < nw ? w : 0]];
      B[w] = q.bra;
      K[w] = q.ket;
    }
    const ShellPairHermite& b0 = *B[0];
    const ShellPairHermite& k0 = *K[0];
    const std::size_t ncb = b0.ncomp_;
    const std::size_t nck = k0.ncomp_;

    for (std::size_t w = 0; w < nw; ++w) {
      EriBlock& o = out[idx[w]];
      o.na = b0.na_;
      o.nb = b0.nb_;
      o.nc = k0.na_;
      o.nd = k0.nb_;
      o.values.assign(ncb * nck, 0.0);
    }

    const int lab = b0.lab_;
    const int lcd = k0.lab_;
    const int tuv_max = lab + lcd;
    const std::size_t rn1 = static_cast<std::size_t>(tuv_max + 1);
    const std::size_t nu = b0.union_coords_.size();
    if (nu == 0) return;
    const std::size_t npb = b0.prims_.size();
    const std::size_t npk = k0.prims_.size();

    // ---- Batch packing: shared structure from lane 0, values SoA.
    tls.rbase.resize(nu);
    for (std::size_t pnt = 0; pnt < nu; ++pnt) {
      const HermiteCoord c = b0.union_coords_[pnt];
      tls.rbase[pnt] = static_cast<std::uint32_t>(
          (static_cast<std::size_t>(c.t) * rn1 + c.u) * rn1 + c.v);
    }

    tls.ent_off_b.resize(npb + 1);
    tls.ent_off_b[0] = 0;
    for (std::size_t p = 0; p < npb; ++p)
      tls.ent_off_b[p + 1] = tls.ent_off_b[p] + b0.prims_[p].entries.size();
    tls.ent_off_k.resize(npk + 1);
    tls.ent_off_k[0] = 0;
    for (std::size_t p = 0; p < npk; ++p)
      tls.ent_off_k[p + 1] = tls.ent_off_k[p] + k0.prims_[p].entries.size();

    tls.bra_vals.resize(tls.ent_off_b[npb] * kW);
    tls.ket_svals.resize(tls.ent_off_k[npk] * kW);
    tls.bp_p.resize(npb * kW);
    tls.bp_x.resize(npb * kW);
    tls.bp_y.resize(npb * kW);
    tls.bp_z.resize(npb * kW);
    tls.bp_me.resize(npb * kW);
    tls.kp_p.resize(npk * kW);
    tls.kp_x.resize(npk * kW);
    tls.kp_y.resize(npk * kW);
    tls.kp_z.resize(npk * kW);
    tls.kp_me.resize(npk * kW);
    for (std::size_t p = 0; p < npb; ++p) {
      double* vals = tls.bra_vals.data() + tls.ent_off_b[p] * kW;
      for (std::size_t w = 0; w < kW; ++w) {
        const auto& pr = B[w]->prims_[p];
        tls.bp_p[p * kW + w] = pr.p;
        tls.bp_x[p * kW + w] = pr.center.x;
        tls.bp_y[p * kW + w] = pr.center.y;
        tls.bp_z[p * kW + w] = pr.center.z;
        tls.bp_me[p * kW + w] = pr.max_abs_e;
        for (std::size_t e = 0; e < pr.entries.size(); ++e)
          vals[e * kW + w] = pr.entries[e].val;
      }
    }
    for (std::size_t p = 0; p < npk; ++p) {
      double* svals = tls.ket_svals.data() + tls.ent_off_k[p] * kW;
      for (std::size_t w = 0; w < kW; ++w) {
        const auto& pr = K[w]->prims_[p];
        tls.kp_p[p * kW + w] = pr.p;
        tls.kp_x[p * kW + w] = pr.center.x;
        tls.kp_y[p * kW + w] = pr.center.y;
        tls.kp_z[p * kW + w] = pr.center.z;
        tls.kp_me[p * kW + w] = pr.max_abs_e;
        for (std::size_t e = 0; e < pr.entries.size(); ++e)
          svals[e * kW + w] = pr.entries[e].sval;
      }
    }

    const std::size_t rcube = rn1 * rn1 * rn1;
    tls.r_a.resize(rcube * kW);
    tls.r_b.resize(rcube * kW);
    tls.panel.resize(nck * nu * kW);
    const double pi52 = 2.0 * std::pow(std::numbers::pi, 2.5);

    // ---- Primitive-combination loop, all lanes in lockstep. A lane
    // whose combination falls below the primitive cutoff (or a padded
    // tail lane) runs with pref = 0, which contributes an exact +-0.0 in
    // stage 2 — the same result as the scalar kernel's skip.
    for (std::size_t bi = 0; bi < npb; ++bi) {
      for (std::size_t ki = 0; ki < npk; ++ki) {
        double pref[kW], alpha[kW], dx[kW], dy[kW], dz[kW], targ[kW];
        bool any = false;
        for (std::size_t w = 0; w < kW; ++w) {
          const double p = tls.bp_p[bi * kW + w];
          const double q = tls.kp_p[ki * kW + w];
          double pr = pi52 / (p * q * std::sqrt(p + q));
          if (w >= nw ||
              pr * tls.bp_me[bi * kW + w] * tls.kp_me[ki * kW + w] <
                  kEriPrimitiveCutoff)
            pr = 0.0;
          else
            any = true;
          pref[w] = pr;
          alpha[w] = p * q / (p + q);
          dx[w] = tls.bp_x[bi * kW + w] - tls.kp_x[ki * kW + w];
          dy[w] = tls.bp_y[bi * kW + w] - tls.kp_y[ki * kW + w];
          dz[w] = tls.bp_z[bi * kW + w] - tls.kp_z[ki * kW + w];
          targ[w] = alpha[w] * (dx[w] * dx[w] + dy[w] * dy[w] + dz[w] * dz[w]);
        }
        if (!any) continue;

        double f[(kBoysMaxM + 1) * kW];
        static_assert(kEriMaxTuv <= kBoysMaxM);
        boys_batch(tuv_max, targ, f);

        // R-tensor recurrence over lanes, same slice order and term
        // association as the scalar RTensor.
        const double* r = build_r(tuv_max, rn1, alpha, dx, dy, dz, f);

        // Stage 1 — ket contraction into the bra-union panel. Entry 0
        // initializes the panel row (no zero-fill pass); the remaining
        // entries fold in two at a time to amortize the panel
        // read-modify-write per FMA. The pairwise grouping reorders the
        // per-point additions relative to the scalar kernel — a few-ulp
        // effect far inside the 1e-12 agreement budget.
        const std::uint32_t* rbase = tls.rbase.data();
        const auto& kp0 = k0.prims_[ki];
        const auto r_of = [r, rn1](const HermiteEntry& e) {
          return r + ((static_cast<std::size_t>(e.t) * rn1 + e.u) * rn1 + e.v) *
                         kW;
        };
        for (std::size_t kc = 0; kc < nck; ++kc) {
          double* panel_kc = tls.panel.data() + kc * nu * kW;
          const HermiteEntry* ke = kp0.entries.data() + kp0.comp_begin[kc];
          const std::size_t ne = kp0.comp_begin[kc + 1] - kp0.comp_begin[kc];
          const double* sv = tls.ket_svals.data() +
                             (tls.ent_off_k[ki] + kp0.comp_begin[kc]) * kW;
          if (ne == 0) {
            std::fill(panel_kc, panel_kc + nu * kW, 0.0);
            continue;
          }
          {
            const double* rk = r_of(ke[0]);
            const V8 s0 = v8_load(sv);
            for (std::size_t pnt = 0; pnt < nu; ++pnt)
              v8_store(panel_kc + pnt * kW,
                       s0 * v8_load(rk + static_cast<std::size_t>(rbase[pnt]) *
                                             kW));
          }
          std::size_t e = 1;
          for (; e + 1 < ne; e += 2) {
            const double* rk0 = r_of(ke[e]);
            const double* rk1 = r_of(ke[e + 1]);
            const V8 s0 = v8_load(sv + e * kW);
            const V8 s1 = v8_load(sv + (e + 1) * kW);
            for (std::size_t pnt = 0; pnt < nu; ++pnt) {
              const std::size_t off = static_cast<std::size_t>(rbase[pnt]) * kW;
              double* pp = panel_kc + pnt * kW;
              v8_store(pp, v8_load(pp) + s0 * v8_load(rk0 + off) +
                               s1 * v8_load(rk1 + off));
            }
          }
          if (e < ne) {
            const double* rk = r_of(ke[e]);
            const V8 s0 = v8_load(sv + e * kW);
            for (std::size_t pnt = 0; pnt < nu; ++pnt) {
              double* pp = panel_kc + pnt * kW;
              v8_store(pp, v8_load(pp) +
                               s0 * v8_load(rk + static_cast<std::size_t>(
                                                     rbase[pnt]) *
                                                     kW));
            }
          }
        }

        // Stage 2 — bra sparse dots against the panel, four ket
        // components per pass so each bra value load feeds four FMAs,
        // scattered to the per-lane output blocks. The per-(bc,kc)
        // summation order matches the scalar kernel exactly.
        const auto& bp0 = b0.prims_[bi];
        for (std::size_t bc = 0; bc < ncb; ++bc) {
          const HermiteEntry* be0 = bp0.entries.data() + bp0.comp_begin[bc];
          const HermiteEntry* be1 = bp0.entries.data() + bp0.comp_begin[bc + 1];
          const double* bv0 = tls.bra_vals.data() +
                              (tls.ent_off_b[bi] + bp0.comp_begin[bc]) * kW;
          std::size_t kc = 0;
          for (; kc + 4 <= nck; kc += 4) {
            const double* p0 = tls.panel.data() + kc * nu * kW;
            const double* p1 = p0 + nu * kW;
            const double* p2 = p1 + nu * kW;
            const double* p3 = p2 + nu * kW;
            V8 s0 = v8_zero(), s1 = v8_zero(), s2 = v8_zero(), s3 = v8_zero();
            const double* bv = bv0;
            for (const HermiteEntry* be = be0; be != be1; ++be, bv += kW) {
              const std::size_t off = static_cast<std::size_t>(be->upos) * kW;
              const V8 b = v8_load(bv);
              s0 = s0 + b * v8_load(p0 + off);
              s1 = s1 + b * v8_load(p1 + off);
              s2 = s2 + b * v8_load(p2 + off);
              s3 = s3 + b * v8_load(p3 + off);
            }
            for (std::size_t w = 0; w < nw; ++w) {
              double* orow = out[idx[w]].values.data() + bc * nck + kc;
              orow[0] += pref[w] * s0[w];
              orow[1] += pref[w] * s1[w];
              orow[2] += pref[w] * s2[w];
              orow[3] += pref[w] * s3[w];
            }
          }
          for (; kc < nck; ++kc) {
            const double* panel_kc = tls.panel.data() + kc * nu * kW;
            V8 sum = v8_zero();
            const double* bv = bv0;
            for (const HermiteEntry* be = be0; be != be1; ++be, bv += kW) {
              const double* pp =
                  panel_kc + static_cast<std::size_t>(be->upos) * kW;
              sum = sum + v8_load(bv) * v8_load(pp);
            }
            for (std::size_t w = 0; w < nw; ++w)
              out[idx[w]].values[bc * nck + kc] += pref[w] * sum[w];
          }
        }
      }
    }
  }

  // Lane-parallel Hermite Coulomb tensor: the scalar RTensor recurrence
  // with every slot widened to kW lanes. Returns the n = 0 slice,
  // [flat (t,u,v) offset * kW + lane].
  static const double* build_r(int tuv_max, std::size_t rn1,
                               const double* alpha, const double* dx,
                               const double* dy, const double* dz,
                               const double* f) {
    double* hi = tls.r_a.data();
    double* lo = tls.r_b.data();
    const auto idx3 = [rn1](int t, int u, int v) {
      return ((static_cast<std::size_t>(t) * rn1 + static_cast<std::size_t>(u)) *
                  rn1 +
              static_cast<std::size_t>(v)) *
             kW;
    };
    const V8 vdx = v8_load(dx);
    const V8 vdy = v8_load(dy);
    const V8 vdz = v8_load(dz);
    double powers[(kEriMaxTuv + 1) * kW];
    {
      V8 m2a = v8_broadcast(1.0);
      const V8 step = v8_broadcast(-2.0) * v8_load(alpha);
      for (int n = 0; n <= tuv_max; ++n) {
        v8_store(powers + static_cast<std::size_t>(n) * kW, m2a);
        m2a = m2a * step;
      }
    }
    for (int n = tuv_max; n >= 0; --n) {
      v8_store(lo, v8_load(powers + static_cast<std::size_t>(n) * kW) *
                       v8_load(f + static_cast<std::size_t>(n) * kW));
      for (int total = 1; total <= tuv_max - n; ++total) {
        for (int t = total; t >= 0; --t) {
          for (int u = total - t; u >= 0; --u) {
            const int v = total - t - u;
            double* dst = lo + idx3(t, u, v);
            V8 val;
            if (t > 0) {
              val = vdx * v8_load(hi + idx3(t - 1, u, v));
              if (t > 1)
                val = v8_broadcast(static_cast<double>(t - 1)) *
                          v8_load(hi + idx3(t - 2, u, v)) +
                      val;
            } else if (u > 0) {
              val = vdy * v8_load(hi + idx3(t, u - 1, v));
              if (u > 1)
                val = v8_broadcast(static_cast<double>(u - 1)) *
                          v8_load(hi + idx3(t, u - 2, v)) +
                      val;
            } else {
              val = vdz * v8_load(hi + idx3(t, u, v - 1));
              if (v > 1)
                val = v8_broadcast(static_cast<double>(v - 1)) *
                          v8_load(hi + idx3(t, u, v - 2)) +
                      val;
            }
            v8_store(dst, val);
          }
        }
      }
      std::swap(hi, lo);
    }
    return hi;
  }
};

void eri_shell_quartet_batched(std::span<const QuartetRef> stream,
                               EriBlock* out) {
  BatchedEri::run(stream, out);
}

}  // namespace mthfx::ints
