#pragma once

// Fixed-width vector-of-double used by the batched Boys evaluator and
// the batched ERI micro-kernel (one lane per quartet). Autovectorization
// of the lane loops is fragile — the hot loops walk several scratch
// arrays the compiler cannot prove distinct, so GCC leaves them scalar —
// hence an explicit vector type: GNU vector extensions where available
// (lowered to one AVX-512 register or two AVX2 registers per value), a
// plain struct fallback elsewhere.
//
// Loads and stores go through memcpy on purpose: it compiles to the
// same unaligned vector move and sidesteps strict-aliasing questions
// about viewing `double` arrays as vectors.

#include <cmath>
#include <cstring>

#include "ints/boys.hpp"

namespace mthfx::ints {

static_assert(kBoysBatchWidth == 8,
              "V8 is hard-wired to 8 lanes (vector_size(64))");

#if defined(__GNUC__) || defined(__clang__)

typedef double V8 __attribute__((vector_size(64), may_alias, aligned(8)));
typedef long long V8i __attribute__((vector_size(64), may_alias, aligned(8)));

inline V8 v8_broadcast(double x) { return V8{x, x, x, x, x, x, x, x}; }

/// Vector exp(x) for x <= 0 (the Boys kernels only ever need e^{-T}).
/// Cody–Waite range reduction, degree-13 Taylor on |r| <= ln2/2, 2^k
/// scaling via exponent-bit construction; matches std::exp to a few ulp.
/// Inputs below the underflow edge return ~DBL_MIN instead of 0 — the
/// callers only ever add e^{-T} to terms >= F_m(T), which dwarfs 1e-308.
inline V8 v8_exp(V8 x) {
  const V8 lo = v8_broadcast(-708.0);
  const V8i keep = x > lo;
  x = (V8)(((V8i)x & keep) | ((V8i)lo & ~keep));
  const V8 shifter = v8_broadcast(6755399441055744.0);  // 1.5 * 2^52
  const V8 kd = x * v8_broadcast(1.4426950408889634) + shifter;
  const V8 k = kd - shifter;  // nearest-integer x / ln2, exact
  V8 r = x - k * v8_broadcast(0.6931471803691238);   // ln2 hi
  r = r - k * v8_broadcast(1.9082149292705877e-10);  // ln2 lo
  V8 p = v8_broadcast(1.0 / 6227020800.0);  // 1/13!
  p = p * r + v8_broadcast(1.0 / 479001600.0);
  p = p * r + v8_broadcast(1.0 / 39916800.0);
  p = p * r + v8_broadcast(1.0 / 3628800.0);
  p = p * r + v8_broadcast(1.0 / 362880.0);
  p = p * r + v8_broadcast(1.0 / 40320.0);
  p = p * r + v8_broadcast(1.0 / 5040.0);
  p = p * r + v8_broadcast(1.0 / 720.0);
  p = p * r + v8_broadcast(1.0 / 120.0);
  p = p * r + v8_broadcast(1.0 / 24.0);
  p = p * r + v8_broadcast(1.0 / 6.0);
  p = p * r + v8_broadcast(0.5);
  p = p * r + v8_broadcast(1.0);
  p = p * r + v8_broadcast(1.0);
  const V8i ebits = (__builtin_convertvector(k, V8i) + 1023) << 52;
  return p * (V8)ebits;
}

#else

struct V8 {
  double d[kBoysBatchWidth];
  double operator[](std::size_t i) const { return d[i]; }
  double& operator[](std::size_t i) { return d[i]; }
  friend V8 operator+(V8 a, V8 b) {
    for (std::size_t w = 0; w < kBoysBatchWidth; ++w) a.d[w] += b.d[w];
    return a;
  }
  friend V8 operator-(V8 a, V8 b) {
    for (std::size_t w = 0; w < kBoysBatchWidth; ++w) a.d[w] -= b.d[w];
    return a;
  }
  friend V8 operator*(V8 a, V8 b) {
    for (std::size_t w = 0; w < kBoysBatchWidth; ++w) a.d[w] *= b.d[w];
    return a;
  }
  friend V8 operator/(V8 a, V8 b) {
    for (std::size_t w = 0; w < kBoysBatchWidth; ++w) a.d[w] /= b.d[w];
    return a;
  }
};

inline V8 v8_broadcast(double x) {
  V8 r;
  for (std::size_t w = 0; w < kBoysBatchWidth; ++w) r.d[w] = x;
  return r;
}

inline V8 v8_exp(V8 x) {
  for (std::size_t w = 0; w < kBoysBatchWidth; ++w) x.d[w] = std::exp(x.d[w]);
  return x;
}

#endif

inline V8 v8_load(const double* p) {
  V8 r;
  std::memcpy(&r, p, sizeof r);
  return r;
}

inline void v8_store(double* p, V8 x) { std::memcpy(p, &x, sizeof x); }

inline V8 v8_zero() { return v8_broadcast(0.0); }

}  // namespace mthfx::ints
