#include "ints/deriv.hpp"

#include <cmath>
#include <numbers>

#include "ints/hermite.hpp"

namespace mthfx::ints {

using chem::cartesian_powers;
using chem::CartPowers;
using chem::Shell;
using chem::Vec3;
using linalg::Matrix;

namespace {

// 1-D overlap factor from an E table (zero for negative powers).
double s1(const HermiteE& e, int i, int j) {
  if (i < 0 || j < 0) return 0.0;
  return e(i, j, 0);
}

struct PairTables {
  HermiteE ex, ey, ez;
  double p;
  Vec3 pcen;
};

PairTables tables(const Shell& a, const Shell& b, std::size_t pa,
                  std::size_t pb, int extra_i, int extra_j) {
  const double ea = a.exponents()[pa];
  const double eb = b.exponents()[pb];
  const double p = ea + eb;
  const Vec3& ca = a.center();
  const Vec3& cb = b.center();
  return {HermiteE(a.l() + extra_i, b.l() + extra_j, ea, eb, ca.x - cb.x),
          HermiteE(a.l() + extra_i, b.l() + extra_j, ea, eb, ca.y - cb.y),
          HermiteE(a.l() + extra_i, b.l() + extra_j, ea, eb, ca.z - cb.z),
          p,
          (1.0 / p) * (ea * ca + eb * cb)};
}

}  // namespace

std::array<Matrix, 3> overlap_gradient_block(const Shell& a, const Shell& b) {
  const auto pa = cartesian_powers(a.l());
  const auto pb = cartesian_powers(b.l());
  std::array<Matrix, 3> grad{Matrix(pa.size(), pb.size()),
                             Matrix(pa.size(), pb.size()),
                             Matrix(pa.size(), pb.size())};
  for (std::size_t i = 0; i < a.num_primitives(); ++i) {
    const double ea = a.exponents()[i];
    for (std::size_t j = 0; j < b.num_primitives(); ++j) {
      const PairTables t = tables(a, b, i, j, /*extra_i=*/1, 0);
      const double pref = std::pow(std::numbers::pi / t.p, 1.5);
      const HermiteE* es[3] = {&t.ex, &t.ey, &t.ez};
      for (std::size_t ca = 0; ca < pa.size(); ++ca) {
        const int ia[3] = {pa[ca].x, pa[ca].y, pa[ca].z};
        for (std::size_t cb = 0; cb < pb.size(); ++cb) {
          const int jb[3] = {pb[cb].x, pb[cb].y, pb[cb].z};
          const double cc = a.norm_coef(i, ca) * b.norm_coef(j, cb) * pref;
          for (std::size_t d = 0; d < 3; ++d) {
            // d/dA_d = 2a (i_d + 1 raised) - i_d (lowered), other dims
            // unchanged.
            double val = 2.0 * ea * s1(*es[d], ia[d] + 1, jb[d]);
            if (ia[d] > 0) val -= ia[d] * s1(*es[d], ia[d] - 1, jb[d]);
            for (std::size_t o = 0; o < 3; ++o)
              if (o != d) val *= s1(*es[o], ia[o], jb[o]);
            grad[d](ca, cb) += cc * val;
          }
        }
      }
    }
  }
  return grad;
}

std::array<Matrix, 3> kinetic_gradient_block(const Shell& a, const Shell& b) {
  const auto pa = cartesian_powers(a.l());
  const auto pb = cartesian_powers(b.l());
  std::array<Matrix, 3> grad{Matrix(pa.size(), pb.size()),
                             Matrix(pa.size(), pb.size()),
                             Matrix(pa.size(), pb.size())};
  for (std::size_t i = 0; i < a.num_primitives(); ++i) {
    const double ea = a.exponents()[i];
    for (std::size_t j = 0; j < b.num_primitives(); ++j) {
      const double eb = b.exponents()[j];
      // Bra raised by 1, ket raised by 2 (kinetic ladder).
      const PairTables t = tables(a, b, i, j, 1, 2);
      const double pref = std::pow(std::numbers::pi / t.p, 1.5);
      const HermiteE* es[3] = {&t.ex, &t.ey, &t.ez};

      // Kinetic 1-D factor with arbitrary bra power.
      auto t1 = [&](const HermiteE& e, int ia, int jb) {
        if (ia < 0) return 0.0;
        double v = -2.0 * eb * eb * s1(e, ia, jb + 2) +
                   eb * (2 * jb + 1) * s1(e, ia, jb);
        if (jb >= 2) v -= 0.5 * jb * (jb - 1) * s1(e, ia, jb - 2);
        return v;
      };
      // Full kinetic element for arbitrary bra powers q[3].
      auto kin = [&](const int q[3], const int jb[3]) {
        if (q[0] < 0 || q[1] < 0 || q[2] < 0) return 0.0;
        return t1(*es[0], q[0], jb[0]) * s1(*es[1], q[1], jb[1]) *
                   s1(*es[2], q[2], jb[2]) +
               s1(*es[0], q[0], jb[0]) * t1(*es[1], q[1], jb[1]) *
                   s1(*es[2], q[2], jb[2]) +
               s1(*es[0], q[0], jb[0]) * s1(*es[1], q[1], jb[1]) *
                   t1(*es[2], q[2], jb[2]);
      };

      for (std::size_t ca = 0; ca < pa.size(); ++ca) {
        const int ia[3] = {pa[ca].x, pa[ca].y, pa[ca].z};
        for (std::size_t cb = 0; cb < pb.size(); ++cb) {
          const int jb[3] = {pb[cb].x, pb[cb].y, pb[cb].z};
          const double cc = a.norm_coef(i, ca) * b.norm_coef(j, cb) * pref;
          for (std::size_t d = 0; d < 3; ++d) {
            int up[3] = {ia[0], ia[1], ia[2]};
            int dn[3] = {ia[0], ia[1], ia[2]};
            ++up[d];
            --dn[d];
            double val = 2.0 * ea * kin(up, jb);
            if (ia[d] > 0) val -= ia[d] * kin(dn, jb);
            grad[d](ca, cb) += cc * val;
          }
        }
      }
    }
  }
  return grad;
}

std::vector<std::array<Matrix, 3>> nuclear_gradient_blocks(
    const Shell& a, const Shell& b, const chem::Molecule& mol) {
  const auto pa = cartesian_powers(a.l());
  const auto pb = cartesian_powers(b.l());
  std::vector<std::array<Matrix, 3>> grads(
      mol.size(), {Matrix(pa.size(), pb.size()), Matrix(pa.size(), pb.size()),
                   Matrix(pa.size(), pb.size())});

  const int lsum = a.l() + b.l();

  for (std::size_t i = 0; i < a.num_primitives(); ++i) {
    const double ea = a.exponents()[i];
    for (std::size_t j = 0; j < b.num_primitives(); ++j) {
      const double eb = b.exponents()[j];
      const PairTables t = tables(a, b, i, j, 1, 1);
      const double pref = 2.0 * std::numbers::pi / t.p;
      const HermiteE* es[3] = {&t.ex, &t.ey, &t.ez};

      for (std::size_t c = 0; c < mol.size(); ++c) {
        const chem::Atom& atom = mol.atom(c);
        const Vec3 pc = t.pcen - atom.pos;
        // One extra order for the operator-center ladder.
        const HermiteR r(lsum + 2, t.p, pc.x, pc.y, pc.z);

        // V element for arbitrary powers on both sides, with an optional
        // +1 shift in the Hermite index of direction `rshift` (for the
        // operator-center derivative).
        auto velem = [&](const int qa[3], const int qb[3], int rshift) {
          if (qa[0] < 0 || qa[1] < 0 || qa[2] < 0) return 0.0;
          double v = 0.0;
          for (int tt = 0; tt <= qa[0] + qb[0]; ++tt)
            for (int uu = 0; uu <= qa[1] + qb[1]; ++uu)
              for (int ww = 0; ww <= qa[2] + qb[2]; ++ww) {
                int ridx[3] = {tt, uu, ww};
                if (rshift >= 0) ++ridx[rshift];
                v += (*es[0])(qa[0], qb[0], tt) * (*es[1])(qa[1], qb[1], uu) *
                     (*es[2])(qa[2], qb[2], ww) *
                     r(ridx[0], ridx[1], ridx[2]);
              }
          return v;
        };

        for (std::size_t ca = 0; ca < pa.size(); ++ca) {
          const int ia[3] = {pa[ca].x, pa[ca].y, pa[ca].z};
          for (std::size_t cb = 0; cb < pb.size(); ++cb) {
            const int jb[3] = {pb[cb].x, pb[cb].y, pb[cb].z};
            const double cc =
                a.norm_coef(i, ca) * b.norm_coef(j, cb) * pref * -atom.z;
            for (std::size_t d = 0; d < 3; ++d) {
              // Bra-center derivative (atom carrying shell a).
              {
                int up[3] = {ia[0], ia[1], ia[2]};
                int dn[3] = {ia[0], ia[1], ia[2]};
                ++up[d];
                --dn[d];
                double val = 2.0 * ea * velem(up, jb, -1);
                if (ia[d] > 0) val -= ia[d] * velem(dn, jb, -1);
                grads[a.atom_index()][d](ca, cb) += cc * val;
              }
              // Ket-center derivative (atom carrying shell b).
              {
                int up[3] = {jb[0], jb[1], jb[2]};
                int dn[3] = {jb[0], jb[1], jb[2]};
                ++up[d];
                --dn[d];
                double val = 2.0 * eb * velem(ia, up, -1);
                if (jb[d] > 0) val -= jb[d] * velem(ia, dn, -1);
                grads[b.atom_index()][d](ca, cb) += cc * val;
              }
              // Operator-center derivative: d/dC_d R = -R(t+1), so the
              // element derivative flips the ladder sign.
              grads[c][d](ca, cb) +=
                  cc * -velem(ia, jb, static_cast<int>(d));
            }
          }
        }
      }
    }
  }
  return grads;
}

EriGradBlocks eri_gradient_blocks(const Shell& a, const Shell& b,
                                  const Shell& c, const Shell& d) {
  const auto pa = cartesian_powers(a.l());
  const auto pb = cartesian_powers(b.l());
  const auto pc = cartesian_powers(c.l());
  const auto pd = cartesian_powers(d.l());
  const std::size_t nblock = pa.size() * pb.size() * pc.size() * pd.size();
  EriGradBlocks out;
  for (auto& center : out.g)
    for (auto& dir : center) dir.assign(nblock, 0.0);

  const int lsum = a.l() + b.l() + c.l() + d.l();
  const double pi52 = 2.0 * std::pow(std::numbers::pi, 2.5);

  for (std::size_t ia = 0; ia < a.num_primitives(); ++ia) {
    for (std::size_t ib = 0; ib < b.num_primitives(); ++ib) {
      const PairTables bra = tables(a, b, ia, ib, 1, 1);
      for (std::size_t ic = 0; ic < c.num_primitives(); ++ic) {
        for (std::size_t id = 0; id < d.num_primitives(); ++id) {
          const PairTables ket = tables(c, d, ic, id, 1, 1);
          const double p = bra.p, q = ket.p;
          const double alpha = p * q / (p + q);
          const Vec3 pq = bra.pcen - ket.pcen;
          const HermiteR r(lsum + 1, alpha, pq.x, pq.y, pq.z);
          const double pref = pi52 / (p * q * std::sqrt(p + q));

          const HermiteE* be[3] = {&bra.ex, &bra.ey, &bra.ez};
          const HermiteE* ke[3] = {&ket.ex, &ket.ey, &ket.ez};

          // Full contraction with arbitrary powers on all four indices.
          auto eri = [&](const int qa[3], const int qb[3], const int qc[3],
                         const int qd[3]) {
            for (int dd = 0; dd < 3; ++dd)
              if (qa[dd] < 0 || qb[dd] < 0 || qc[dd] < 0 || qd[dd] < 0)
                return 0.0;
            double sum = 0.0;
            for (int tt = 0; tt <= qa[0] + qb[0]; ++tt)
              for (int uu = 0; uu <= qa[1] + qb[1]; ++uu)
                for (int vv = 0; vv <= qa[2] + qb[2]; ++vv) {
                  const double ebv = (*be[0])(qa[0], qb[0], tt) *
                                     (*be[1])(qa[1], qb[1], uu) *
                                     (*be[2])(qa[2], qb[2], vv);
                  if (ebv == 0.0) continue;
                  for (int t2 = 0; t2 <= qc[0] + qd[0]; ++t2)
                    for (int u2 = 0; u2 <= qc[1] + qd[1]; ++u2)
                      for (int v2 = 0; v2 <= qc[2] + qd[2]; ++v2) {
                        const double ekv = (*ke[0])(qc[0], qd[0], t2) *
                                           (*ke[1])(qc[1], qd[1], u2) *
                                           (*ke[2])(qc[2], qd[2], v2);
                        if (ekv == 0.0) continue;
                        const double sign =
                            ((t2 + u2 + v2) % 2 == 0) ? 1.0 : -1.0;
                        sum += ebv * ekv * sign *
                               r(tt + t2, uu + u2, vv + v2);
                      }
                }
            return sum;
          };

          const double expos[3] = {a.exponents()[ia], b.exponents()[ib],
                                   c.exponents()[ic]};

          std::size_t idx = 0;
          for (std::size_t caa = 0; caa < pa.size(); ++caa) {
            const int qa0[3] = {pa[caa].x, pa[caa].y, pa[caa].z};
            for (std::size_t cbb = 0; cbb < pb.size(); ++cbb) {
              const int qb0[3] = {pb[cbb].x, pb[cbb].y, pb[cbb].z};
              for (std::size_t ccc = 0; ccc < pc.size(); ++ccc) {
                const int qc0[3] = {pc[ccc].x, pc[ccc].y, pc[ccc].z};
                for (std::size_t cdd = 0; cdd < pd.size(); ++cdd, ++idx) {
                  const int qd0[3] = {pd[cdd].x, pd[cdd].y, pd[cdd].z};
                  const double cc = a.norm_coef(ia, caa) *
                                    b.norm_coef(ib, cbb) *
                                    c.norm_coef(ic, ccc) *
                                    d.norm_coef(id, cdd) * pref;
                  for (int center = 0; center < 3; ++center) {
                    for (std::size_t dd = 0; dd < 3; ++dd) {
                      int qa[3] = {qa0[0], qa0[1], qa0[2]};
                      int qb[3] = {qb0[0], qb0[1], qb0[2]};
                      int qc[3] = {qc0[0], qc0[1], qc0[2]};
                      int* mut = center == 0 ? qa : center == 1 ? qb : qc;
                      const int orig = mut[dd];
                      mut[dd] = orig + 1;
                      double val = 2.0 * expos[center] * eri(qa, qb, qc, qd0);
                      mut[dd] = orig - 1;
                      if (orig > 0) val -= orig * eri(qa, qb, qc, qd0);
                      mut[dd] = orig;
                      out.g[static_cast<std::size_t>(center)][dd][idx] +=
                          cc * val;
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

std::array<std::vector<double>, 3> eri_gradient_block(const Shell& a,
                                                      const Shell& b,
                                                      const Shell& c,
                                                      const Shell& d,
                                                      int center) {
  EriGradBlocks all = eri_gradient_blocks(a, b, c, d);
  return std::move(all.g[static_cast<std::size_t>(center)]);
}

}  // namespace mthfx::ints
