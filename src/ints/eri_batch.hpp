#pragma once

// Batched SIMD ERI micro-kernel.
//
// The scalar kernel (eri_shell_quartet) evaluates one quartet at a time,
// so the Boys function, the R-tensor recurrence and the two Hermite
// contraction stages all run at vector width 1. This entry point takes
// the whole post-screening quartet stream of a task, groups quartets
// whose pair expansions share an identical structural skeleton
// (ShellPairHermite::structure_key + full verification), packs up to
// kBoysBatchWidth of them into SoA lanes, and runs every kernel stage
// across the lanes with contiguous fixed-width inner loops the compiler
// vectorizes. Results are scattered back in the caller's original stream
// order, so downstream digestion and the tree reduction see exactly the
// per-quartet blocks the scalar kernel would have produced (agreement is
// a few ulp — the only per-lane difference is the tabulated-Taylor Boys
// top value; association order is otherwise identical).
//
// Batch formation (see docs/hfx_scheme.md, "Batch formation"):
//   1. intern each distinct pair pointer to a structural class id,
//   2. stable-sort stream indices by the (bra class, ket class) key,
//   3. cut equal-key runs into chunks of <= kBoysBatchWidth lanes,
//   4. pad ragged tails by replicating lane 0 with a zero prefactor.
// Every step is deterministic, so the same stream always produces the
// same batches and the same floating-point result.

#include <cstddef>
#include <span>

#include "ints/eri.hpp"

namespace mthfx::ints {

/// One quartet of a post-screening stream: bra/ket pair expansions built
/// with EriKernel::kSparse or kBatched. Pairs may repeat across entries.
struct QuartetRef {
  const ShellPairHermite* bra = nullptr;
  const ShellPairHermite* ket = nullptr;
};

/// Evaluate every quartet in `stream`, writing stream[i]'s block into
/// out[i] (same layout as eri_shell_quartet). Buffers inside out[i] and
/// the kernel scratch are reused across calls — the hot path performs no
/// allocation once capacities are warm.
void eri_shell_quartet_batched(std::span<const QuartetRef> stream,
                               EriBlock* out);

}  // namespace mthfx::ints
