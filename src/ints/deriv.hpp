#pragma once

// Derivative integrals for analytic nuclear gradients.
//
// Everything follows from the function-level shift relation for a
// primitive Cartesian Gaussian centered at A:
//     d/dA_x [x_A^i e^{-a r_A^2}] = 2a (i+1 term) - i (i-1 term),
// so every integral derivative is a combination of the same integral
// with one Cartesian power raised and lowered. Operator-center
// derivatives (nuclear attraction) come from the Hermite-Coulomb ladder
// d/dC_x R(t,u,v) = -R(t+1,u,v). The fourth ERI center is eliminated by
// translational invariance.

#include <array>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::ints {

/// d/d{Ax,Ay,Az} of the overlap block <a|b> (derivative with respect to
/// shell a's center; d/dB = -d/dA).
std::array<linalg::Matrix, 3> overlap_gradient_block(const chem::Shell& a,
                                                     const chem::Shell& b);

/// d/d{Ax,Ay,Az} of the kinetic block.
std::array<linalg::Matrix, 3> kinetic_gradient_block(const chem::Shell& a,
                                                     const chem::Shell& b);

/// Nuclear-attraction derivatives of the block <a| sum_C -Z_C/r_C |b>:
/// returns, for every atom g of the molecule, d(block)/d{X_g,Y_g,Z_g}.
/// Includes both basis-center terms (for atoms carrying a or b) and
/// operator-center terms.
std::vector<std::array<linalg::Matrix, 3>> nuclear_gradient_blocks(
    const chem::Shell& a, const chem::Shell& b, const chem::Molecule& mol);

/// All ERI derivative blocks of one shell quartet: g[center][dir] is the
/// flattened (na*nb*nc*nd) block of d(ab|cd)/d{center,dir} for center in
/// {A, B, C} and dir in {x, y, z}. The D derivative follows from
/// translational invariance: dD = -(dA + dB + dC). Computing all three
/// centers in one pass shares the Hermite E tables and the (single)
/// order-(L+1) Hermite-Coulomb tensor across every primitive quartet —
/// the gradient contraction in hfx/grad_contraction.cpp runs on this.
struct EriGradBlocks {
  std::array<std::array<std::vector<double>, 3>, 3> g;
};

EriGradBlocks eri_gradient_blocks(const chem::Shell& a, const chem::Shell& b,
                                  const chem::Shell& c, const chem::Shell& d);

/// ERI derivative block: d(ab|cd)/d{center}. `center` selects A(0), B(1),
/// C(2); the D derivative is -(A+B+C). Each entry is a flattened
/// (na*nb*nc*nd) block for the x, y, z derivative. Convenience wrapper
/// over eri_gradient_blocks (kept for the derivative-integral tests).
std::array<std::vector<double>, 3> eri_gradient_block(const chem::Shell& a,
                                                      const chem::Shell& b,
                                                      const chem::Shell& c,
                                                      const chem::Shell& d,
                                                      int center);

}  // namespace mthfx::ints
