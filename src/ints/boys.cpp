#include "ints/boys.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

namespace mthfx::ints {

namespace {

// Above this T the exp(-T) terms are below double precision and the
// asymptotic/upward path is both exact and stable.
constexpr double kLargeT = 36.0;

double boys_series(int m, double t) {
  // F_m(T) = exp(-T) Σ_{i≥0} (2T)^i / [(2m+1)(2m+3)...(2m+2i+1)]
  double term = 1.0 / (2 * m + 1);
  double sum = term;
  for (int i = 1; i < 200; ++i) {
    term *= 2.0 * t / (2 * m + 2 * i + 1);
    sum += term;
    if (term < 1e-17 * sum) break;
  }
  return std::exp(-t) * sum;
}

}  // namespace

void boys(int m_max, double t, std::span<double> out) {
  assert(static_cast<int>(out.size()) >= m_max + 1);
  if (t < 1e-13) {
    for (int m = 0; m <= m_max; ++m) out[static_cast<std::size_t>(m)] = 1.0 / (2 * m + 1);
    return;
  }
  if (t < kLargeT) {
    // Downward recursion from a series-evaluated top value:
    // F_m = (2T F_{m+1} + e^{-T}) / (2m+1).
    const double emt = std::exp(-t);
    out[static_cast<std::size_t>(m_max)] = boys_series(m_max, t);
    for (int m = m_max - 1; m >= 0; --m)
      out[static_cast<std::size_t>(m)] =
          (2.0 * t * out[static_cast<std::size_t>(m + 1)] + emt) / (2 * m + 1);
    return;
  }
  // Large T: F_0 = sqrt(pi/T)/2 erf(sqrt T); upward recursion
  // F_{m+1} = ((2m+1) F_m - e^{-T}) / (2T) is stable here.
  const double emt = std::exp(-t);
  out[0] = 0.5 * std::sqrt(std::numbers::pi / t) * std::erf(std::sqrt(t));
  for (int m = 0; m < m_max; ++m)
    out[static_cast<std::size_t>(m + 1)] =
        ((2 * m + 1) * out[static_cast<std::size_t>(m)] - emt) / (2.0 * t);
}

double boys_single(int m, double t) {
  std::vector<double> buf(static_cast<std::size_t>(m) + 1);
  boys(m, t, buf);
  return buf[static_cast<std::size_t>(m)];
}

}  // namespace mthfx::ints
