#include "ints/boys.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

#include "ints/simd.hpp"

namespace mthfx::ints {

namespace {

// The erf/upward path is used whenever upward recursion is stable:
// T >= max(kUpwardMinT, 2 m_max). The first bound keeps erf(sqrt T)
// cheap and the series short where it is still used; the second keeps
// the per-step error factor (2m+1)/(2T) below 1 and the subtracted
// e^{-T} term negligible against (2m+1) F_m for every m <= m_max
// (measured: <= ~3 ulp for all m_max <= 32 at this threshold, versus
// ~1.5e-15 relative for the large-sum ascending series near T = 36 —
// the old fixed seam at 36 stepped between those two noise floors).
constexpr double kUpwardMinT = 18.0;

double upward_threshold(int m_max) {
  return std::max(kUpwardMinT, 2.0 * m_max);
}

double boys_series(int m, double t) {
  // F_m(T) = exp(-T) Σ_{i≥0} (2T)^i / [(2m+1)(2m+3)...(2m+2i+1)]
  double term = 1.0 / (2 * m + 1);
  double sum = term;
  for (int i = 1; i < 200; ++i) {
    term *= 2.0 * t / (2 * m + 2 * i + 1);
    sum += term;
    if (term < 1e-17 * sum) break;
  }
  return std::exp(-t) * sum;
}

}  // namespace

void boys(int m_max, double t, std::span<double> out) {
  assert(static_cast<int>(out.size()) >= m_max + 1);
  if (t < 1e-13) {
    for (int m = 0; m <= m_max; ++m) out[static_cast<std::size_t>(m)] = 1.0 / (2 * m + 1);
    return;
  }
  if (t < upward_threshold(m_max)) {
    // Downward recursion from a series-evaluated top value:
    // F_m = (2T F_{m+1} + e^{-T}) / (2m+1).
    const double emt = std::exp(-t);
    out[static_cast<std::size_t>(m_max)] = boys_series(m_max, t);
    for (int m = m_max - 1; m >= 0; --m)
      out[static_cast<std::size_t>(m)] =
          (2.0 * t * out[static_cast<std::size_t>(m + 1)] + emt) / (2 * m + 1);
    return;
  }
  // Stable-upward regime: F_0 = sqrt(pi/T)/2 erf(sqrt T); upward
  // recursion F_{m+1} = ((2m+1) F_m - e^{-T}) / (2T).
  const double emt = std::exp(-t);
  out[0] = 0.5 * std::sqrt(std::numbers::pi / t) * std::erf(std::sqrt(t));
  for (int m = 0; m < m_max; ++m)
    out[static_cast<std::size_t>(m + 1)] =
        ((2 * m + 1) * out[static_cast<std::size_t>(m)] - emt) / (2.0 * t);
}

double boys_single(int m, double t) {
  assert(m <= kBoysMaxM);
  double buf[kBoysMaxM + 1];
  boys(m, t, {buf, static_cast<std::size_t>(m) + 1});
  return buf[m];
}

namespace {

// ---- Batched path: tabulated Taylor top value + vectorized recursions.

constexpr std::size_t kW = kBoysBatchWidth;
constexpr int kTaylorTerms = 7;   // |δ| <= h/2 ⇒ truncation ~ (h/2)^7 / 7!
constexpr double kGridStep = 1.0 / 32.0;
// The table must cover every T the Taylor path can see: the downward
// path is selected only below upward_threshold(m_max) <= 2 kBoysMaxM.
constexpr double kTableMaxT = 2.0 * kBoysMaxM;
constexpr std::size_t kGridPoints =
    static_cast<std::size_t>(kTableMaxT / kGridStep) + 2;  // + guard row
constexpr std::size_t kTableCols =
    static_cast<std::size_t>(kBoysMaxM) + kTaylorTerms + 1;

// F_m(T_g) on the grid, row-major [grid][m], seeded from the scalar
// series path so the two evaluators share one source of truth.
const double* boys_table() {
  static const std::vector<double> table = [] {
    std::vector<double> t(kGridPoints * kTableCols);
    std::vector<double> row(kTableCols);
    for (std::size_t g = 0; g < kGridPoints; ++g) {
      const double tg = static_cast<double>(g) * kGridStep;
      // Series + downward directly (not boys(), whose path choice would
      // hand large-T rows to upward recursion — fine too, but the series
      // is convergent over the whole table range and keeps this loop
      // independent of the seam policy).
      const int top = static_cast<int>(kTableCols) - 1;
      const double emt = std::exp(-tg);
      row[static_cast<std::size_t>(top)] = boys_series(top, tg);
      for (int m = top - 1; m >= 0; --m)
        row[static_cast<std::size_t>(m)] =
            (2.0 * tg * row[static_cast<std::size_t>(m + 1)] + emt) /
            (2 * m + 1);
      std::copy(row.begin(), row.end(), t.begin() + g * kTableCols);
    }
    return t;
  }();
  return table.data();
}

}  // namespace

void boys_batch(int m_max, const double* t, double* out) {
  assert(m_max <= kBoysMaxM);
  const double* table = boys_table();
  const double seam = upward_threshold(m_max);

  // Per-lane scalar setup (the recursions below are the vector loops).
  // Dead lanes of either path run on clamped arguments, so they stay
  // finite and division-by-small-T free; the final blend discards them.
  double emt[kW], td[kW], tu[kW], top[kW], f0[kW];
  v8_store(emt, v8_exp(v8_broadcast(0.0) - v8_load(t)));
  bool up[kW];
  bool any_up = false, any_down = false;
  for (std::size_t w = 0; w < kW; ++w) {
    const double tw = t[w];
    up[w] = tw >= seam;
    if (up[w]) {
      any_up = true;
      tu[w] = tw;
      f0[w] = 0.5 * std::sqrt(std::numbers::pi / tw) * std::erf(std::sqrt(tw));
      td[w] = 0.0;
      top[w] = 1.0;  // harmless downward seed for this dead lane
    } else {
      any_down = true;
      td[w] = tw;
      tu[w] = kUpwardMinT;
      f0[w] = 0.5;  // harmless upward seed for this dead lane
      // Taylor top value F_{m_max}(T) about the nearest grid point:
      // F_m(T) = Σ_k F_{m+k}(T_g) (T_g - T)^k / k!  (|T_g - T| <= h/2).
      const std::size_t g = static_cast<std::size_t>(tw / kGridStep + 0.5);
      const double delta = static_cast<double>(g) * kGridStep - tw;
      const double* row =
          table + g * kTableCols + static_cast<std::size_t>(m_max);
      double acc = row[kTaylorTerms];
      for (int k = kTaylorTerms - 1; k >= 0; --k)
        acc = row[k] + delta * acc / (k + 1);
      top[w] = acc;
    }
  }

  // Downward lanes, m_max -> 0 (same association order as scalar boys,
  // so only the Taylor-vs-series top value separates the two paths).
  double down[(kBoysMaxM + 1) * kW];
  double upv[(kBoysMaxM + 1) * kW];
  const V8 vemt = v8_load(emt);
  if (any_down) {
    const V8 two_td = v8_broadcast(2.0) * v8_load(td);
    V8 hi = v8_load(top);
    v8_store(down + static_cast<std::size_t>(m_max) * kW, hi);
    for (int m = m_max - 1; m >= 0; --m) {
      hi = (two_td * hi + vemt) / v8_broadcast(static_cast<double>(2 * m + 1));
      v8_store(down + static_cast<std::size_t>(m) * kW, hi);
    }
  }

  // Upward lanes, 0 -> m_max.
  if (any_up) {
    const V8 two_tu = v8_broadcast(2.0) * v8_load(tu);
    V8 lo = v8_load(f0);
    v8_store(upv, lo);
    for (int m = 0; m < m_max; ++m) {
      lo = (v8_broadcast(static_cast<double>(2 * m + 1)) * lo - vemt) / two_tu;
      v8_store(upv + static_cast<std::size_t>(m + 1) * kW, lo);
    }
  }

  if (!any_up) {
    std::copy(down, down + static_cast<std::size_t>(m_max + 1) * kW, out);
    return;
  }
  if (!any_down) {
    std::copy(upv, upv + static_cast<std::size_t>(m_max + 1) * kW, out);
    return;
  }
  for (int m = 0; m <= m_max; ++m)
    for (std::size_t w = 0; w < kW; ++w)
      out[static_cast<std::size_t>(m) * kW + w] =
          up[w] ? upv[static_cast<std::size_t>(m) * kW + w]
                : down[static_cast<std::size_t>(m) * kW + w];
}

}  // namespace mthfx::ints
