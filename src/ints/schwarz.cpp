#include "ints/schwarz.hpp"

#include <algorithm>
#include <cmath>

#include "ints/eri.hpp"

namespace mthfx::ints {

linalg::Matrix schwarz_bounds(const chem::BasisSet& basis) {
  const std::size_t ns = basis.num_shells();
  linalg::Matrix q(ns, ns);
  for (std::size_t sa = 0; sa < ns; ++sa) {
    for (std::size_t sb = sa; sb < ns; ++sb) {
      const EriBlock block = eri_shell_quartet(
          basis.shell(sa), basis.shell(sb), basis.shell(sa), basis.shell(sb));
      double mx = 0.0;
      for (std::size_t i = 0; i < block.na; ++i)
        for (std::size_t j = 0; j < block.nb; ++j)
          mx = std::max(mx, std::abs(block(i, j, i, j)));
      const double bound = std::sqrt(mx);
      q(sa, sb) = bound;
      q(sb, sa) = bound;
    }
  }
  return q;
}

}  // namespace mthfx::ints
