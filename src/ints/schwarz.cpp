#include "ints/schwarz.hpp"

#include <algorithm>
#include <cmath>

#include "ints/eri.hpp"

namespace mthfx::ints {

double schwarz_bound(const chem::Shell& a, const chem::Shell& b,
                     bool* floored) {
  const EriBlock block = eri_shell_quartet(a, b, a, b);
  double mx = 0.0;
  for (std::size_t i = 0; i < block.na; ++i)
    for (std::size_t j = 0; j < block.nb; ++j)
      mx = std::max(mx, std::abs(block(i, j, i, j)));
  // Floor sub-noise diagonals at the kernel's truncation scale: for a
  // distant pair the computed (ab|ab) underflows to exactly 0 through
  // the primitive cutoff while cross integrals against the pair still
  // compute at ~1e-16, so a bare sqrt would (a) violate the Schwarz
  // inequality for computed integrals and (b) drop the pair at *any*
  // eps — eps -> 0 would never recover the unscreened result. Each of
  // the (nprim_a*nprim_b)^2 primitive combinations of (ab|ab) may
  // have been truncated by up to the cutoff; only diagonals below
  // that noise scale are floored, so healthy pairs keep the exact
  // sqrt(max (ab|ab)) bound.
  const double npp =
      static_cast<double>(a.num_primitives() * b.num_primitives());
  const double noise = npp * npp * kEriPrimitiveCutoff;
  if (floored) *floored = mx < noise;
  return mx < noise ? std::sqrt(mx + noise) : std::sqrt(mx);
}

double schwarz_bound(const chem::Shell& a, const chem::Shell& b) {
  return schwarz_bound(a, b, nullptr);
}

linalg::Matrix schwarz_bounds(const chem::BasisSet& basis) {
  const std::size_t ns = basis.num_shells();
  linalg::Matrix q(ns, ns);
  for (std::size_t sa = 0; sa < ns; ++sa) {
    for (std::size_t sb = sa; sb < ns; ++sb) {
      const double bound = schwarz_bound(basis.shell(sa), basis.shell(sb));
      q(sa, sb) = bound;
      q(sb, sa) = bound;
    }
  }
  return q;
}

}  // namespace mthfx::ints
