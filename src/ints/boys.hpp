#pragma once

// Boys function F_m(T) = ∫₀¹ t^{2m} exp(-T t²) dt — the scalar kernel of
// every Coulomb-type Gaussian integral.

#include <span>

namespace mthfx::ints {

/// Fill out[0..m_max] with F_0(T) .. F_{m_max}(T).
/// Strategy: convergent ascending series + downward recursion for small
/// and moderate T; erf-based closed form + upward recursion for large T
/// (where it is numerically stable).
void boys(int m_max, double t, std::span<double> out);

/// Single value F_m(T).
double boys_single(int m, double t);

}  // namespace mthfx::ints
