#pragma once

// Boys function F_m(T) = ∫₀¹ t^{2m} exp(-T t²) dt — the scalar kernel of
// every Coulomb-type Gaussian integral.

#include <cstddef>
#include <span>

namespace mthfx::ints {

/// Largest Hermite order the integral stack ever requests (f shells on
/// all four centers plus derivative headroom). Bounds the fixed stack
/// buffers in boys_single and the batched-table extent.
inline constexpr int kBoysMaxM = 20;

/// Lane count of the batched evaluator: one AVX-512 register of doubles,
/// and the quartet width of the batched ERI kernel.
inline constexpr std::size_t kBoysBatchWidth = 8;

/// Fill out[0..m_max] with F_0(T) .. F_{m_max}(T).
/// Strategy: erf-based closed form + upward recursion wherever that
/// recursion is stable (T >= max(18, 2 m_max): no cancellation against
/// the e^{-T} term and the per-step error contracts); convergent
/// ascending series + downward recursion below that.
void boys(int m_max, double t, std::span<double> out);

/// Single value F_m(T). m must be <= kBoysMaxM (fixed stack buffer — the
/// O(np²) sweeps call this too often to heap-allocate per call).
double boys_single(int m, double t);

/// Batched evaluation for kBoysBatchWidth lanes: out is SoA,
/// out[m * kBoysBatchWidth + w] = F_m(t[w]). Branch-free per lane — a
/// tabulated Taylor top value + vectorized downward recursion below the
/// upward-stability threshold, the erf/upward form above it, blended by
/// per-lane mask (both paths are evaluated with clamped arguments, so no
/// lane ever divides by a small T or reads past the table).
/// Requires m_max <= kBoysMaxM. Agrees with the scalar boys() to a few
/// ulp on every lane.
void boys_batch(int m_max, const double* t, double* out);

}  // namespace mthfx::ints
