#pragma once

// One-electron integrals over a BasisSet: overlap S, kinetic T, nuclear
// attraction V. All return symmetric nao × nao matrices.

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "linalg/matrix.hpp"

namespace mthfx::ints {

linalg::Matrix overlap(const chem::BasisSet& basis);
linalg::Matrix kinetic(const chem::BasisSet& basis);
linalg::Matrix nuclear_attraction(const chem::BasisSet& basis,
                                  const chem::Molecule& mol);

/// H_core = T + V.
linalg::Matrix core_hamiltonian(const chem::BasisSet& basis,
                                const chem::Molecule& mol);

/// Shell-block overlap, used by tests and by the shell-pair machinery.
/// Returns an (ncart_a x ncart_b) matrix for shells a, b.
linalg::Matrix overlap_block(const chem::Shell& a, const chem::Shell& b);

/// Per-shell-pair kinetic and nuclear-attraction blocks. Public so the
/// sparse SCF path can assemble one-electron matrices over a
/// distance-culled pair list instead of the dense O(ns²) sweep (both
/// decay with the pair's Gaussian-product factor; nuclear attraction
/// still sums over every atom for a kept pair).
linalg::Matrix kinetic_block(const chem::Shell& a, const chem::Shell& b);
linalg::Matrix nuclear_block(const chem::Shell& a, const chem::Shell& b,
                             const chem::Molecule& mol);

/// Electric-dipole integrals: component d of <mu| r_d |nu> (atomic
/// units, origin at `origin`). d = 0, 1, 2 for x, y, z.
linalg::Matrix dipole(const chem::BasisSet& basis, std::size_t d,
                      const chem::Vec3& origin = {0, 0, 0});

}  // namespace mthfx::ints
