#include "ints/hermite.hpp"

#include <cmath>
#include <utility>

namespace mthfx::ints {

HermiteE::HermiteE(int imax, int jmax, double a, double b, double ab_dist)
    : imax_(imax), jmax_(jmax), tmax_(imax + jmax) {
  table_.assign(static_cast<std::size_t>(imax_ + 1) *
                    static_cast<std::size_t>(jmax_ + 1) *
                    static_cast<std::size_t>(tmax_ + 1),
                0.0);
  const double p = a + b;
  const double mu = a * b / p;
  const double pa = -b * ab_dist / p;  // P_x - A_x
  const double pb = a * ab_dist / p;   // P_x - B_x
  const double inv2p = 0.5 / p;

  auto at = [&](int i, int j, int t) -> double& {
    return table_[index(i, j, t)];
  };
  auto get = [&](int i, int j, int t) -> double {
    if (t < 0 || t > i + j) return 0.0;
    return table_[index(i, j, t)];
  };

  at(0, 0, 0) = std::exp(-mu * ab_dist * ab_dist);
  // Build up in i first (j = 0), then in j for every i.
  for (int i = 1; i <= imax_; ++i)
    for (int t = 0; t <= i; ++t)
      at(i, 0, t) = inv2p * get(i - 1, 0, t - 1) + pa * get(i - 1, 0, t) +
                    (t + 1) * get(i - 1, 0, t + 1);
  for (int j = 1; j <= jmax_; ++j)
    for (int i = 0; i <= imax_; ++i)
      for (int t = 0; t <= i + j; ++t)
        at(i, j, t) = inv2p * get(i, j - 1, t - 1) + pb * get(i, j - 1, t) +
                      (t + 1) * get(i, j - 1, t + 1);
}

HermiteR::HermiteR(int tuv_max, double alpha, double pcx, double pcy,
                   double pcz)
    : max_(tuv_max) {
  const auto n1 = static_cast<std::size_t>(max_ + 1);
  const std::size_t slice = n1 * n1 * n1;
  std::vector<double> hi(slice, 0.0), lo(slice, 0.0);

  const double r2 = pcx * pcx + pcy * pcy + pcz * pcz;
  std::vector<double> f(n1);
  boys(max_, alpha * r2, f);

  auto idx = [n1](int t, int u, int v) {
    return (static_cast<std::size_t>(t) * n1 + static_cast<std::size_t>(u)) *
               n1 +
           static_cast<std::size_t>(v);
  };

  // Build slices downward in the Boys order n; the t/u/v ladders consume
  // the (n+1) slice. After the loop `hi` holds the n = 0 slice.
  for (int n = max_; n >= 0; --n) {
    lo[idx(0, 0, 0)] = std::pow(-2.0 * alpha, n) * f[static_cast<std::size_t>(n)];
    for (int total = 1; total <= max_ - n; ++total) {
      for (int t = total; t >= 0; --t) {
        for (int u = total - t; u >= 0; --u) {
          const int v = total - t - u;
          double val = 0.0;
          if (t > 0) {
            if (t > 1) val += (t - 1) * hi[idx(t - 2, u, v)];
            val += pcx * hi[idx(t - 1, u, v)];
          } else if (u > 0) {
            if (u > 1) val += (u - 1) * hi[idx(t, u - 2, v)];
            val += pcy * hi[idx(t, u - 1, v)];
          } else {
            if (v > 1) val += (v - 1) * hi[idx(t, u, v - 2)];
            val += pcz * hi[idx(t, u, v - 1)];
          }
          lo[idx(t, u, v)] = val;
        }
      }
    }
    std::swap(hi, lo);
  }
  table_ = std::move(hi);
}

}  // namespace mthfx::ints
