#pragma once

// Two-electron repulsion integrals (ERIs) over shell quartets, evaluated
// with the McMurchie–Davidson Hermite scheme. This is the hot kernel the
// HFX layer parallelizes.
//
// The contracted-pair Hermite expansion (ShellPairHermite) depends only
// on the bra or ket shell pair, so callers that sweep many quartets (the
// Fock builder) precompute it once per significant pair and amortize it
// across every partner pair.

#include <cstddef>
#include <vector>

#include "chem/basis.hpp"

namespace mthfx::ints {

/// Primitive-combination truncation threshold of the ERI kernel: a
/// primitive quartet whose prefactor-weighted Hermite bound falls below
/// this is skipped. Anything the kernel reports is therefore only
/// accurate to ~(number of primitive combinations) x this value, and
/// consumers that build *bounds* from computed integrals (Schwarz) must
/// allow for that noise floor or they will under-bound.
inline constexpr double kEriPrimitiveCutoff = 1e-18;

/// Flattened (na x nb x nc x nd) block of (ab|cd) integrals in chemists'
/// notation, index ((i*nb + j)*nc + k)*nd + l.
struct EriBlock {
  std::size_t na = 0, nb = 0, nc = 0, nd = 0;
  std::vector<double> values;

  double operator()(std::size_t i, std::size_t j, std::size_t k,
                    std::size_t l) const {
    return values[((i * nb + j) * nc + k) * nd + l];
  }
};

/// Precomputed coefficient-weighted Hermite expansion of one contracted
/// shell pair (all primitive pairs).
class ShellPairHermite {
 public:
  ShellPairHermite(const chem::Shell& a, const chem::Shell& b);

  std::size_t num_functions_bra() const { return na_; }
  std::size_t num_functions_ket() const { return nb_; }
  int total_l() const { return lab_; }

 private:
  friend void eri_shell_quartet(const ShellPairHermite& bra,
                                const ShellPairHermite& ket, EriBlock& out);

  struct Prim {
    double p = 0.0;         // exponent sum
    chem::Vec3 center{};    // Gaussian product center
    double max_abs_e = 0.0; // largest |e| — primitive-level cutoff bound
    std::vector<double> e;  // [comp][t][u][v] over a (lab+1)^3 box
  };

  int lab_ = 0;
  std::size_t na_ = 0, nb_ = 0, ncomp_ = 0;
  std::vector<chem::CartPowers> powers_a_, powers_b_;
  std::vector<Prim> prims_;
};

/// Compute one shell quartet from precomputed pair data into `out`
/// (buffers are reused across calls — the hot path never allocates once
/// capacities are warm).
void eri_shell_quartet(const ShellPairHermite& bra,
                       const ShellPairHermite& ket, EriBlock& out);

/// Convenience: compute one shell quartet (ab|cd) from shells.
EriBlock eri_shell_quartet(const chem::Shell& a, const chem::Shell& b,
                           const chem::Shell& c, const chem::Shell& d);

/// Full nao^4 tensor in chemists' notation (test/small-system use only).
/// Index ((mu*n + nu)*n + lam)*n + sig.
std::vector<double> eri_tensor(const chem::BasisSet& basis);

}  // namespace mthfx::ints
