#pragma once

// Two-electron repulsion integrals (ERIs) over shell quartets, evaluated
// with the McMurchie–Davidson Hermite scheme. This is the hot kernel the
// HFX layer parallelizes.
//
// The contracted-pair Hermite expansion (ShellPairHermite) depends only
// on the bra or ket shell pair, so callers that sweep many quartets (the
// Fock builder) precompute it once per significant pair and amortize it
// across every partner pair.
//
// The pair expansion is stored *sparse*: per Cartesian component, a
// compacted list of structurally nonzero (t,u,v) -> E entries (angular
// bounds t <= ax+bx etc. plus the same-center parity zeros), so the
// quartet kernel touches only real work. The quartet contraction is
// ordered ket-first: for each primitive pair the Hermite Coulomb tensor
// R is contracted with each ket component's E-list once, into a panel
// indexed by the bra pair's union pattern, and that panel is reused by
// every bra component (see docs/hfx_scheme.md, "The ERI kernel").

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chem/basis.hpp"

namespace mthfx::ints {

class BatchedEri;  // batched SIMD kernel implementation (eri_batch.cpp)

/// Largest per-center angular momentum the fixed-capacity kernels
/// support (f shells), and the largest combined Hermite order any
/// quartet's Coulomb tensor can reach.
inline constexpr int kEriMaxL = 3;
inline constexpr int kEriMaxTuv = 4 * kEriMaxL;

/// Primitive-combination truncation threshold of the ERI kernel: a
/// primitive quartet whose prefactor-weighted Hermite bound falls below
/// this is skipped. Anything the kernel reports is therefore only
/// accurate to ~(number of primitive combinations) x this value, and
/// consumers that build *bounds* from computed integrals (Schwarz) must
/// allow for that noise floor or they will under-bound.
inline constexpr double kEriPrimitiveCutoff = 1e-18;

/// Flattened (na x nb x nc x nd) block of (ab|cd) integrals in chemists'
/// notation, index ((i*nb + j)*nc + k)*nd + l.
struct EriBlock {
  std::size_t na = 0, nb = 0, nc = 0, nd = 0;
  std::vector<double> values;

  double operator()(std::size_t i, std::size_t j, std::size_t k,
                    std::size_t l) const {
    return values[((i * nb + j) * nc + k) * nd + l];
  }
};

/// Which quartet kernel consumes a ShellPairHermite (and what data the
/// pair therefore carries). kSparse is the scalar production kernel;
/// kBatched is the SIMD kernel (eri_batch.hpp), which reads the same
/// sparse layout plus the structural class key; kDenseReference
/// additionally keeps the historical dense (lab+1)^3 boxes so the
/// pre-optimization kernel (eri_shell_quartet_dense_reference) can run
/// as a before/after baseline in benches and differential tests.
enum class EriKernel { kSparse, kDenseReference, kBatched };

/// One structurally nonzero Hermite expansion coefficient of one
/// Cartesian component: E(t,u,v) with the contraction/normalization
/// coefficient folded in.
struct HermiteEntry {
  double val = 0.0;       ///< coefficient-weighted E value (bra-side use)
  double sval = 0.0;      ///< val * (-1)^(t+u+v) (ket-side use)
  std::uint8_t t = 0, u = 0, v = 0;  ///< Hermite orders
  std::uint16_t upos = 0; ///< position in the pair's union pattern
};

/// A (t,u,v) coordinate of the pair-level union sparsity pattern.
struct HermiteCoord {
  std::uint8_t t = 0, u = 0, v = 0;
};

/// Precomputed coefficient-weighted Hermite expansion of one contracted
/// shell pair (all primitive pairs), compacted to structurally nonzero
/// entries.
class ShellPairHermite {
 public:
  ShellPairHermite(const chem::Shell& a, const chem::Shell& b,
                   EriKernel variant = EriKernel::kSparse);

  std::size_t num_functions_bra() const { return na_; }
  std::size_t num_functions_ket() const { return nb_; }
  int total_l() const { return lab_; }
  /// Size of the union sparsity pattern (<= (lab+1)^3; halved for
  /// same-center pairs by Hermite parity).
  std::size_t union_size() const { return union_coords_.size(); }
  /// FNV-1a hash of the pair's structural skeleton — angular class,
  /// primitive count, union pattern, per-component entry coordinates —
  /// but *not* coefficient values. Two pairs with equal skeletons (the
  /// batched kernel verifies equality, the key only pre-filters) can be
  /// evaluated in lockstep SIMD lanes.
  std::uint64_t structure_key() const { return structure_key_; }

 private:
  friend class BatchedEri;
  friend void eri_shell_quartet(const ShellPairHermite& bra,
                                const ShellPairHermite& ket, EriBlock& out);
  friend void eri_shell_quartet_dense_reference(const ShellPairHermite& bra,
                                                const ShellPairHermite& ket,
                                                EriBlock& out);

  struct Prim {
    double p = 0.0;         // exponent sum
    chem::Vec3 center{};    // Gaussian product center
    double max_abs_e = 0.0; // largest |e| — primitive-level cutoff bound
    /// Compacted per-component entry lists, concatenated; component c
    /// owns entries [comp_begin[c], comp_begin[c+1]).
    std::vector<HermiteEntry> entries;
    std::vector<std::uint32_t> comp_begin;
    /// Dense [comp][t][u][v] boxes — only with EriKernel::kDenseReference.
    std::vector<double> dense;
  };

  int lab_ = 0;
  std::size_t na_ = 0, nb_ = 0, ncomp_ = 0;
  std::vector<chem::CartPowers> powers_a_, powers_b_;
  /// Union of the per-component sparsity patterns, in box-offset order;
  /// HermiteEntry::upos indexes into this.
  std::vector<HermiteCoord> union_coords_;
  std::vector<Prim> prims_;
  std::uint64_t structure_key_ = 0;
};

/// Compute one shell quartet from precomputed pair data into `out`
/// (buffers are reused across calls — the hot path never allocates once
/// capacities are warm). Sparse production kernel.
void eri_shell_quartet(const ShellPairHermite& bra,
                       const ShellPairHermite& ket, EriBlock& out);

/// Pre-optimization reference kernel: dense (lab+1)^3 boxes with
/// zero-skipping branches, ket contraction redone per bra component.
/// Both pairs must have been built with EriKernel::kDenseReference.
/// Kept as the before/after baseline for bench_a7 and the differential
/// sparse-vs-dense agreement tests.
void eri_shell_quartet_dense_reference(const ShellPairHermite& bra,
                                       const ShellPairHermite& ket,
                                       EriBlock& out);

/// Convenience: compute one shell quartet (ab|cd) from shells.
EriBlock eri_shell_quartet(const chem::Shell& a, const chem::Shell& b,
                           const chem::Shell& c, const chem::Shell& d);

/// Full nao^4 tensor in chemists' notation (test/small-system use only).
/// Index ((mu*n + nu)*n + lam)*n + sig. Pair expansions are built for
/// the sa >= sb triangle only and reused for both bra orders.
std::vector<double> eri_tensor(const chem::BasisSet& basis);

}  // namespace mthfx::ints
