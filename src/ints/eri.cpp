#include "ints/eri.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <numbers>

#include "ints/boys.hpp"

namespace mthfx::ints {

using chem::cartesian_powers;
using chem::Shell;
using chem::Vec3;

namespace {

// Compile-time capacity: supports shells up to l = kEriMaxL (f) on each
// center, i.e. Hermite orders up to kEriMaxTuv in the Coulomb tensor.
constexpr int kMaxL = kEriMaxL;
constexpr int kMaxLab = 2 * kMaxL;          // per-side Hermite order
constexpr int kMaxTuv = kEriMaxTuv;         // combined order for R
constexpr std::size_t kE1 = kMaxLab + 1;    // per-dimension box extent

// Fixed-capacity E(t; i, j) table for one direction of one primitive pair.
struct E1d {
  double v[kMaxL + 1][kMaxL + 1][kE1];  // e[i][j][t]

  void build(int imax, int jmax, double a, double b, double ab) {
    const double p = a + b;
    const double mu = a * b / p;
    const double pa = -b * ab / p;
    const double pb = a * ab / p;
    const double inv2p = 0.5 / p;

    for (int i = 0; i <= imax; ++i)
      for (int j = 0; j <= jmax; ++j)
        for (std::size_t t = 0; t < kE1; ++t) v[i][j][t] = 0.0;

    v[0][0][0] = std::exp(-mu * ab * ab);
    for (int i = 1; i <= imax; ++i)
      for (int t = 0; t <= i; ++t) {
        double val = pa * v[i - 1][0][t];
        if (t > 0) val += inv2p * v[i - 1][0][t - 1];
        val += (t + 1) * v[i - 1][0][t + 1];
        v[i][0][t] = val;
      }
    for (int j = 1; j <= jmax; ++j)
      for (int i = 0; i <= imax; ++i)
        for (int t = 0; t <= i + j; ++t) {
          double val = pb * v[i][j - 1][t];
          if (t > 0) val += inv2p * v[i][j - 1][t - 1];
          val += (t + 1) * v[i][j - 1][t + 1];
          v[i][j][t] = val;
        }
  }
};

// Hermite Coulomb tensor with fixed-capacity ping-pong slices.
struct RTensor {
  std::size_t n1 = 0;
  double slice_a[(kMaxTuv + 1) * (kMaxTuv + 1) * (kMaxTuv + 1)];
  double slice_b[(kMaxTuv + 1) * (kMaxTuv + 1) * (kMaxTuv + 1)];

  const double* build(int tuv_max, double alpha, double x, double y,
                      double z) {
    n1 = static_cast<std::size_t>(tuv_max + 1);
    double f[kMaxTuv + 1];
    boys(tuv_max, alpha * (x * x + y * y + z * z), {f, n1});

    double* hi = slice_a;
    double* lo = slice_b;
    const auto idx = [this](int t, int u, int v) {
      return (static_cast<std::size_t>(t) * n1 + static_cast<std::size_t>(u)) *
                 n1 +
             static_cast<std::size_t>(v);
    };
    double powers[kMaxTuv + 1];
    double m2a = 1.0;
    for (int n = 0; n <= tuv_max; ++n) {
      powers[n] = m2a;
      m2a *= -2.0 * alpha;
    }
    for (int n = tuv_max; n >= 0; --n) {
      lo[idx(0, 0, 0)] = powers[n] * f[n];
      for (int total = 1; total <= tuv_max - n; ++total) {
        for (int t = total; t >= 0; --t) {
          for (int u = total - t; u >= 0; --u) {
            const int v = total - t - u;
            double val = 0.0;
            if (t > 0) {
              if (t > 1) val += (t - 1) * hi[idx(t - 2, u, v)];
              val += x * hi[idx(t - 1, u, v)];
            } else if (u > 0) {
              if (u > 1) val += (u - 1) * hi[idx(t, u - 2, v)];
              val += y * hi[idx(t, u - 1, v)];
            } else {
              if (v > 1) val += (v - 1) * hi[idx(t, u, v - 2)];
              val += z * hi[idx(t, u, v - 1)];
            }
            lo[idx(t, u, v)] = val;
          }
        }
      }
      std::swap(hi, lo);
    }
    return hi;  // the n = 0 slice
  }
};

// True when E(t; i, j) vanishes identically in one dimension, by
// parity rather than by accident of the geometry. A same-coordinate
// pair (ab == 0) expands the pure monomial (x-P)^{i+j}, so only
// i+j-t even survives; equal exponents with i == j expand
// ((x-P)^2 - (ab/2)^2)^i, even in x-P, so only even t survives.
// Entry retention must be decided by these rules, not by comparing
// the computed value with zero: the recurrence's cancellation noise
// makes a value test geometry-dependent, which splits structurally
// identical pairs into distinct batching classes (observed as the
// batched kernel degrading to width-1 batches whenever a basis puts
// the same exponent on both shells of a pair).
bool parity_zero_1d(double ab, double ea, double eb, int i, int j, int t) {
  if (ab == 0.0) return ((i + j - t) & 1) != 0;
  if (ea == eb && i == j) return (t & 1) != 0;
  return false;
}

thread_local RTensor tls_r;

// Per-quartet scratch for the sparse kernel (capacity persists, so the
// hot path never allocates once warm).
thread_local std::vector<std::uint32_t> tls_rbase;  // union point -> R offset
thread_local std::vector<double> tls_panel;  // [ket comp][union point]

}  // namespace

ShellPairHermite::ShellPairHermite(const Shell& a, const Shell& b,
                                   EriKernel variant)
    : lab_(a.l() + b.l()),
      powers_a_(cartesian_powers(a.l())),
      powers_b_(cartesian_powers(b.l())) {
  na_ = powers_a_.size();
  nb_ = powers_b_.size();
  ncomp_ = na_ * nb_;
  const std::size_t n1 = static_cast<std::size_t>(lab_ + 1);
  const std::size_t box = n1 * n1 * n1;

  prims_.resize(a.num_primitives() * b.num_primitives());
  E1d ex, ey, ez;
  const Vec3& ca = a.center();
  const Vec3& cb = b.center();

  // Pass 1: expand every primitive pair into a dense per-component box
  // (the structurally simple form), recording which (t,u,v) slots are
  // nonzero for *any* component of *any* primitive — that union is the
  // pattern the quartet kernel's ket->bra panel is indexed by.
  std::vector<std::vector<double>> boxes(prims_.size());
  std::vector<std::vector<char>> nz(prims_.size());
  std::vector<char> mask(box, 0);
  std::size_t pp = 0;
  for (std::size_t i = 0; i < a.num_primitives(); ++i) {
    for (std::size_t j = 0; j < b.num_primitives(); ++j, ++pp) {
      const double ea = a.exponents()[i];
      const double eb = b.exponents()[j];
      Prim& prim = prims_[pp];
      prim.p = ea + eb;
      prim.center = (1.0 / prim.p) * (ea * ca + eb * cb);
      ex.build(a.l(), b.l(), ea, eb, ca.x - cb.x);
      ey.build(a.l(), b.l(), ea, eb, ca.y - cb.y);
      ez.build(a.l(), b.l(), ea, eb, ca.z - cb.z);

      std::vector<double>& e = boxes[pp];
      e.assign(ncomp_ * box, 0.0);
      std::vector<char>& keep = nz[pp];
      keep.assign(ncomp_ * box, 0);
      std::size_t comp = 0;
      for (std::size_t ia = 0; ia < na_; ++ia) {
        for (std::size_t ib = 0; ib < nb_; ++ib, ++comp) {
          const double cc = a.norm_coef(i, ia) * b.norm_coef(j, ib);
          double* dst = e.data() + comp * box;
          char* nzc = keep.data() + comp * box;
          for (int t = 0; t <= powers_a_[ia].x + powers_b_[ib].x; ++t) {
            if (parity_zero_1d(ca.x - cb.x, ea, eb, powers_a_[ia].x,
                               powers_b_[ib].x, t))
              continue;
            const double vx = cc * ex.v[powers_a_[ia].x][powers_b_[ib].x][t];
            for (int u = 0; u <= powers_a_[ia].y + powers_b_[ib].y; ++u) {
              if (parity_zero_1d(ca.y - cb.y, ea, eb, powers_a_[ia].y,
                                 powers_b_[ib].y, u))
                continue;
              const double vxy =
                  vx * ey.v[powers_a_[ia].y][powers_b_[ib].y][u];
              for (int w = 0; w <= powers_a_[ia].z + powers_b_[ib].z; ++w) {
                if (parity_zero_1d(ca.z - cb.z, ea, eb, powers_a_[ia].z,
                                   powers_b_[ib].z, w))
                  continue;
                const std::size_t off = (static_cast<std::size_t>(t) * n1 +
                                         static_cast<std::size_t>(u)) *
                                            n1 +
                                        static_cast<std::size_t>(w);
                const double ev = vxy * ez.v[powers_a_[ia].z][powers_b_[ib].z][w];
                dst[off] = ev;
                nzc[off] = 1;
                mask[off] = 1;
              }
            }
          }
        }
      }
      for (double ev : e)
        prim.max_abs_e = std::max(prim.max_abs_e, std::abs(ev));
    }
  }

  // The union pattern, in box-offset order. For a same-center pair the
  // Hermite parity rule E(t;i,j) = 0 for odd i+j-t empties half the box;
  // for distinct centers it is the angular bounds that shrink it.
  std::vector<std::uint16_t> upos_of(box, 0xffff);
  for (std::size_t t = 0; t < n1; ++t)
    for (std::size_t u = 0; u < n1; ++u)
      for (std::size_t v = 0; v < n1; ++v) {
        const std::size_t off = (t * n1 + u) * n1 + v;
        if (!mask[off]) continue;
        upos_of[off] = static_cast<std::uint16_t>(union_coords_.size());
        union_coords_.push_back({static_cast<std::uint8_t>(t),
                                 static_cast<std::uint8_t>(u),
                                 static_cast<std::uint8_t>(v)});
      }

  // Pass 2: compact each component's structurally nonzero slots into the
  // entry lists the quartet kernel iterates, with the ket-side parity
  // sign prefolded. Retention follows the parity flags, never the value:
  // an accidental numerical zero stays (it contributes nothing) so that
  // every pair with the same skeleton compacts to the same entry
  // pattern regardless of geometry.
  for (std::size_t pi = 0; pi < prims_.size(); ++pi) {
    Prim& prim = prims_[pi];
    const std::vector<double>& e = boxes[pi];
    const std::vector<char>& keep = nz[pi];
    prim.comp_begin.assign(ncomp_ + 1, 0);
    for (std::size_t comp = 0; comp < ncomp_; ++comp) {
      prim.comp_begin[comp] = static_cast<std::uint32_t>(prim.entries.size());
      const double* src = e.data() + comp * box;
      const char* nzc = keep.data() + comp * box;
      for (std::size_t t = 0; t < n1; ++t)
        for (std::size_t u = 0; u < n1; ++u)
          for (std::size_t v = 0; v < n1; ++v) {
            const std::size_t off = (t * n1 + u) * n1 + v;
            if (!nzc[off]) continue;
            const double ev = src[off];
            HermiteEntry entry;
            entry.val = ev;
            entry.sval = ((t + u + v) & 1) ? -ev : ev;
            entry.t = static_cast<std::uint8_t>(t);
            entry.u = static_cast<std::uint8_t>(u);
            entry.v = static_cast<std::uint8_t>(v);
            entry.upos = upos_of[off];
            prim.entries.push_back(entry);
          }
    }
    prim.comp_begin[ncomp_] = static_cast<std::uint32_t>(prim.entries.size());
    if (variant == EriKernel::kDenseReference) prim.dense = std::move(boxes[pi]);
  }

  // Structural class key for the batched kernel: FNV-1a over everything
  // that shapes the kernel's control flow and indexing — angular class,
  // union pattern, per-primitive/component entry coordinates — with the
  // coefficient *values* deliberately excluded (they become SIMD lane
  // data). Equal skeleton => identical instruction stream.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(lab_));
  mix(na_);
  mix(nb_);
  mix(prims_.size());
  mix(union_coords_.size());
  for (const HermiteCoord& c : union_coords_)
    mix((static_cast<std::uint64_t>(c.t) << 16) |
        (static_cast<std::uint64_t>(c.u) << 8) | c.v);
  for (const Prim& prim : prims_) {
    mix(prim.entries.size());
    for (const std::uint32_t cb : prim.comp_begin) mix(cb);
    for (const HermiteEntry& e : prim.entries)
      mix((static_cast<std::uint64_t>(e.t) << 40) |
          (static_cast<std::uint64_t>(e.u) << 32) |
          (static_cast<std::uint64_t>(e.v) << 24) | e.upos);
  }
  structure_key_ = h;
}

void eri_shell_quartet(const ShellPairHermite& bra,
                       const ShellPairHermite& ket, EriBlock& out) {
  out.na = bra.na_;
  out.nb = bra.nb_;
  out.nc = ket.na_;
  out.nd = ket.nb_;
  const std::size_t ncomp_bra = bra.ncomp_;
  const std::size_t ncomp_ket = ket.ncomp_;
  out.values.assign(ncomp_bra * ncomp_ket, 0.0);

  const double pi52 = 2.0 * std::pow(std::numbers::pi, 2.5);
  const int lab = bra.lab_;
  const int lcd = ket.lab_;
  const std::size_t rn1 = static_cast<std::size_t>(lab + lcd + 1);
  const std::size_t nu = bra.union_coords_.size();
  if (nu == 0) return;

  // The R-tensor extent rn1 is fixed for the whole quartet, so the flat
  // R offset of every bra union point can be tabulated once: R factors
  // as base(t,u,v) + shift(tt,uu,vv) for any ket entry.
  std::vector<std::uint32_t>& rbase = tls_rbase;
  rbase.resize(nu);
  for (std::size_t pnt = 0; pnt < nu; ++pnt) {
    const HermiteCoord c = bra.union_coords_[pnt];
    rbase[pnt] = static_cast<std::uint32_t>(
        (static_cast<std::size_t>(c.t) * rn1 + c.u) * rn1 + c.v);
  }
  std::vector<double>& panel = tls_panel;
  panel.resize(ncomp_ket * nu);

  for (const auto& bp : bra.prims_) {
    for (const auto& kp : ket.prims_) {
      const double p = bp.p, q = kp.p;
      const double pref = pi52 / (p * q * std::sqrt(p + q));
      // Primitive-combination cutoff: the Hermite expansions carry the
      // exp(-mu R^2) pair factors, so this bound removes combinations of
      // tight/distant primitives that cannot reach double precision.
      if (pref * bp.max_abs_e * kp.max_abs_e < kEriPrimitiveCutoff) continue;
      const double alpha = p * q / (p + q);
      const Vec3 pq = bp.center - kp.center;
      const double* r = tls_r.build(lab + lcd, alpha, pq.x, pq.y, pq.z);

      // Stage 1 — ket-side contraction intermediates: fold each ket
      // component's E-list into R once, over the bra union pattern. The
      // panel is then reused by every bra component, removing the
      // O(ncomp_bra) redundancy of redoing ek·R per bra component.
      for (std::size_t kc = 0; kc < ncomp_ket; ++kc) {
        double* panel_kc = panel.data() + kc * nu;
        std::fill(panel_kc, panel_kc + nu, 0.0);
        const HermiteEntry* ke = kp.entries.data() + kp.comp_begin[kc];
        const HermiteEntry* ke_end = kp.entries.data() + kp.comp_begin[kc + 1];
        for (; ke != ke_end; ++ke) {
          const double s = ke->sval;
          const double* rk =
              r + (static_cast<std::size_t>(ke->t) * rn1 + ke->u) * rn1 +
              ke->v;
          for (std::size_t pnt = 0; pnt < nu; ++pnt)
            panel_kc[pnt] += s * rk[rbase[pnt]];
        }
      }

      // Stage 2 — bra-side dot products: each (bra comp, ket comp) pair
      // is a sparse dot of the bra E-list against the ket panel.
      double* outv = out.values.data();
      for (std::size_t bc = 0; bc < ncomp_bra; ++bc) {
        const HermiteEntry* be0 = bp.entries.data() + bp.comp_begin[bc];
        const HermiteEntry* be1 = bp.entries.data() + bp.comp_begin[bc + 1];
        double* orow = outv + bc * ncomp_ket;
        for (std::size_t kc = 0; kc < ncomp_ket; ++kc) {
          const double* panel_kc = panel.data() + kc * nu;
          double sum = 0.0;
          for (const HermiteEntry* be = be0; be != be1; ++be)
            sum += be->val * panel_kc[be->upos];
          orow[kc] += pref * sum;
        }
      }
    }
  }
}

void eri_shell_quartet_dense_reference(const ShellPairHermite& bra,
                                       const ShellPairHermite& ket,
                                       EriBlock& out) {
  out.na = bra.na_;
  out.nb = bra.nb_;
  out.nc = ket.na_;
  out.nd = ket.nb_;
  out.values.assign(out.na * out.nb * out.nc * out.nd, 0.0);

  const int lab = bra.lab_;
  const int lcd = ket.lab_;
  const std::size_t nb1 = static_cast<std::size_t>(lab + 1);
  const std::size_t kb1 = static_cast<std::size_t>(lcd + 1);
  const std::size_t bra_box = nb1 * nb1 * nb1;
  const std::size_t ket_box = kb1 * kb1 * kb1;
  const double pi52 = 2.0 * std::pow(std::numbers::pi, 2.5);
  const std::size_t rn1 = static_cast<std::size_t>(lab + lcd + 1);

  for (const auto& bp : bra.prims_) {
    assert(!bp.dense.empty() &&
           "dense-reference kernel needs EriKernel::kDenseReference pairs");
    for (const auto& kp : ket.prims_) {
      const double p = bp.p, q = kp.p;
      const double pref = pi52 / (p * q * std::sqrt(p + q));
      if (pref * bp.max_abs_e * kp.max_abs_e < kEriPrimitiveCutoff) continue;
      const double alpha = p * q / (p + q);
      const Vec3 pq = bp.center - kp.center;
      const double* r = tls_r.build(lab + lcd, alpha, pq.x, pq.y, pq.z);

      std::size_t braq = 0;
      for (std::size_t ia = 0; ia < out.na; ++ia) {
        for (std::size_t ib = 0; ib < out.nb; ++ib, ++braq) {
          const int tx = bra.powers_a_[ia].x + bra.powers_b_[ib].x;
          const int ty = bra.powers_a_[ia].y + bra.powers_b_[ib].y;
          const int tz = bra.powers_a_[ia].z + bra.powers_b_[ib].z;
          const double* eb = bp.dense.data() + braq * bra_box;
          std::size_t ketq = 0;
          for (std::size_t ic = 0; ic < out.nc; ++ic) {
            for (std::size_t id = 0; id < out.nd; ++id, ++ketq) {
              const int sx = ket.powers_a_[ic].x + ket.powers_b_[id].x;
              const int sy = ket.powers_a_[ic].y + ket.powers_b_[id].y;
              const int sz = ket.powers_a_[ic].z + ket.powers_b_[id].z;
              const double* ek = kp.dense.data() + ketq * ket_box;
              double sum = 0.0;
              for (int t = 0; t <= tx; ++t)
                for (int u = 0; u <= ty; ++u)
                  for (int v = 0; v <= tz; ++v) {
                    const double ebv =
                        eb[(static_cast<std::size_t>(t) * nb1 +
                            static_cast<std::size_t>(u)) *
                               nb1 +
                           static_cast<std::size_t>(v)];
                    if (ebv == 0.0) continue;
                    double inner = 0.0;
                    for (int tt = 0; tt <= sx; ++tt)
                      for (int uu = 0; uu <= sy; ++uu)
                        for (int vv = 0; vv <= sz; ++vv) {
                          const double ekv =
                              ek[(static_cast<std::size_t>(tt) * kb1 +
                                  static_cast<std::size_t>(uu)) *
                                     kb1 +
                                 static_cast<std::size_t>(vv)];
                          if (ekv == 0.0) continue;
                          const double rv =
                              r[(static_cast<std::size_t>(t + tt) * rn1 +
                                 static_cast<std::size_t>(u + uu)) *
                                    rn1 +
                                static_cast<std::size_t>(v + vv)];
                          inner += ((tt + uu + vv) & 1) ? -ekv * rv : ekv * rv;
                        }
                    sum += ebv * inner;
                  }
              out.values[((ia * out.nb + ib) * out.nc + ic) * out.nd + id] +=
                  pref * sum;
            }
          }
        }
      }
    }
  }
}

EriBlock eri_shell_quartet(const Shell& a, const Shell& b, const Shell& c,
                           const Shell& d) {
  const ShellPairHermite bra(a, b);
  const ShellPairHermite ket(c, d);
  EriBlock out;
  eri_shell_quartet(bra, ket, out);
  return out;
}

std::vector<double> eri_tensor(const chem::BasisSet& basis) {
  const std::size_t n = basis.num_functions();
  const std::size_t ns = basis.num_shells();
  std::vector<double> tensor(n * n * n * n, 0.0);

  // Pair expansions for the sa >= sb triangle only: the Gaussian product
  // does not care about factor order, so pair (hi, lo) serves both bra
  // orders with component indices swapped. Halves the oracle's dominant
  // memory term (ns^2 -> ns(ns+1)/2 pair objects).
  std::vector<ShellPairHermite> pairs;
  pairs.reserve(ns * (ns + 1) / 2);
  for (std::size_t sa = 0; sa < ns; ++sa)
    for (std::size_t sb = 0; sb <= sa; ++sb)
      pairs.emplace_back(basis.shell(sa), basis.shell(sb));
  const auto tri = [](std::size_t hi, std::size_t lo) {
    return hi * (hi + 1) / 2 + lo;
  };

  EriBlock block;
  for (std::size_t sa = 0; sa < ns; ++sa)
    for (std::size_t sb = 0; sb < ns; ++sb) {
      const bool swap_ab = sa < sb;
      const ShellPairHermite& bra =
          pairs[swap_ab ? tri(sb, sa) : tri(sa, sb)];
      for (std::size_t sc = 0; sc < ns; ++sc)
        for (std::size_t sd = 0; sd < ns; ++sd) {
          const bool swap_cd = sc < sd;
          const ShellPairHermite& ket =
              pairs[swap_cd ? tri(sd, sc) : tri(sc, sd)];
          eri_shell_quartet(bra, ket, block);
          const std::size_t oa = basis.first_function(sa);
          const std::size_t ob = basis.first_function(sb);
          const std::size_t oc = basis.first_function(sc);
          const std::size_t od = basis.first_function(sd);
          // Block axes follow the stored (hi, lo) pair order; map each
          // component back to the requested (sa, sb, sc, sd) order.
          for (std::size_t i = 0; i < block.na; ++i)
            for (std::size_t j = 0; j < block.nb; ++j)
              for (std::size_t k = 0; k < block.nc; ++k)
                for (std::size_t l = 0; l < block.nd; ++l) {
                  const std::size_t mu = oa + (swap_ab ? j : i);
                  const std::size_t nv = ob + (swap_ab ? i : j);
                  const std::size_t lam = oc + (swap_cd ? l : k);
                  const std::size_t sig = od + (swap_cd ? k : l);
                  tensor[((mu * n + nv) * n + lam) * n + sig] =
                      block(i, j, k, l);
                }
        }
    }
  return tensor;
}

}  // namespace mthfx::ints
