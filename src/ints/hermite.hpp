#pragma once

// McMurchie–Davidson Hermite machinery shared by the one-electron and
// two-electron integral code (McMurchie & Davidson, JCP 26, 218 (1978)).
//
// E(t; i, j) — expansion coefficients of the product of two 1-D Cartesian
// Gaussians in Hermite Gaussians Λ_t. R(t, u, v) — Hermite Coulomb
// integrals, derivatives of the Boys kernel.

#include <cstddef>
#include <span>
#include <vector>

#include "ints/boys.hpp"

namespace mthfx::ints {

/// Table of E(t; i, j) coefficients for one Cartesian direction and one
/// primitive pair: indices i <= imax, j <= jmax, t <= i + j.
class HermiteE {
 public:
  /// a, b: primitive exponents; ab_dist: A_x - B_x for this direction.
  HermiteE(int imax, int jmax, double a, double b, double ab_dist);

  double operator()(int i, int j, int t) const {
    if (t < 0 || t > i + j) return 0.0;
    return table_[index(i, j, t)];
  }

 private:
  std::size_t index(int i, int j, int t) const {
    return (static_cast<std::size_t>(i) * static_cast<std::size_t>(jmax_ + 1) +
            static_cast<std::size_t>(j)) *
               static_cast<std::size_t>(tmax_ + 1) +
           static_cast<std::size_t>(t);
  }
  int imax_, jmax_, tmax_;
  std::vector<double> table_;
};

/// Hermite Coulomb integral tensor R(t, u, v) for given order bound
/// tuv_max = t + u + v, composite exponent alpha and distance vector PC.
/// R(t,u,v) = (-1)^? derivative ladder over F_n(alpha * |PC|^2).
class HermiteR {
 public:
  HermiteR(int tuv_max, double alpha, double pcx, double pcy, double pcz);

  double operator()(int t, int u, int v) const {
    return table_[index(t, u, v)];
  }

 private:
  std::size_t index(int t, int u, int v) const {
    const auto n = static_cast<std::size_t>(max_ + 1);
    return (static_cast<std::size_t>(t) * n + static_cast<std::size_t>(u)) * n +
           static_cast<std::size_t>(v);
  }
  int max_;
  std::vector<double> table_;
};

}  // namespace mthfx::ints
