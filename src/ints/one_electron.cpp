#include "ints/one_electron.hpp"

#include <cmath>
#include <numbers>

#include "ints/hermite.hpp"

namespace mthfx::ints {

using chem::BasisSet;
using chem::cartesian_powers;
using chem::Molecule;
using chem::Shell;
using chem::Vec3;
using linalg::Matrix;

namespace {

// Per-primitive-pair Hermite E tables for the three directions.
struct PairE {
  HermiteE ex, ey, ez;
  double p;     // a + b
  Vec3 pcen;    // Gaussian product center
};

PairE make_pair_e(const Shell& a, const Shell& b, std::size_t pa,
                  std::size_t pb, int extra = 0) {
  const double ea = a.exponents()[pa];
  const double eb = b.exponents()[pb];
  const double p = ea + eb;
  const Vec3& ca = a.center();
  const Vec3& cb = b.center();
  const Vec3 pcen = (1.0 / p) * (ea * ca + eb * cb);
  return PairE{HermiteE(a.l(), b.l() + extra, ea, eb, ca[0] - cb[0]),
               HermiteE(a.l(), b.l() + extra, ea, eb, ca[1] - cb[1]),
               HermiteE(a.l(), b.l() + extra, ea, eb, ca[2] - cb[2]), p, pcen};
}

}  // namespace

Matrix overlap_block(const Shell& a, const Shell& b) {
  const auto pa = cartesian_powers(a.l());
  const auto pb = cartesian_powers(b.l());
  Matrix block(pa.size(), pb.size());
  for (std::size_t i = 0; i < a.num_primitives(); ++i) {
    for (std::size_t j = 0; j < b.num_primitives(); ++j) {
      const PairE e = make_pair_e(a, b, i, j);
      const double pref = std::pow(std::numbers::pi / e.p, 1.5);
      for (std::size_t ca = 0; ca < pa.size(); ++ca) {
        for (std::size_t cb = 0; cb < pb.size(); ++cb) {
          const double s = e.ex(pa[ca].x, pb[cb].x, 0) *
                           e.ey(pa[ca].y, pb[cb].y, 0) *
                           e.ez(pa[ca].z, pb[cb].z, 0) * pref;
          block(ca, cb) += a.norm_coef(i, ca) * b.norm_coef(j, cb) * s;
        }
      }
    }
  }
  return block;
}

Matrix overlap(const BasisSet& basis) {
  const std::size_t n = basis.num_functions();
  Matrix s(n, n);
  for (std::size_t sa = 0; sa < basis.num_shells(); ++sa) {
    for (std::size_t sb = sa; sb < basis.num_shells(); ++sb) {
      const Matrix block = overlap_block(basis.shell(sa), basis.shell(sb));
      const std::size_t oa = basis.first_function(sa);
      const std::size_t ob = basis.first_function(sb);
      for (std::size_t i = 0; i < block.rows(); ++i)
        for (std::size_t j = 0; j < block.cols(); ++j) {
          s(oa + i, ob + j) = block(i, j);
          s(ob + j, oa + i) = block(i, j);
        }
    }
  }
  return s;
}

// Kinetic-energy block via the 1-D overlap ladder:
// T(i,j) = -2 b^2 S(i,j+2) + b(2j+1) S(i,j) - j(j-1)/2 S(i,j-2)
// applied per direction with plain overlaps in the other two.
Matrix kinetic_block(const Shell& a, const Shell& b) {
  const auto pa = cartesian_powers(a.l());
  const auto pb = cartesian_powers(b.l());
  Matrix block(pa.size(), pb.size());
  for (std::size_t i = 0; i < a.num_primitives(); ++i) {
    for (std::size_t j = 0; j < b.num_primitives(); ++j) {
      const double eb = b.exponents()[j];
      const PairE e = make_pair_e(a, b, i, j, /*extra=*/2);
      const double pref = std::pow(std::numbers::pi / e.p, 1.5);

      auto s1 = [&](const HermiteE& et, int ia, int jb) -> double {
        if (jb < 0) return 0.0;
        return et(ia, jb, 0);
      };
      auto t1 = [&](const HermiteE& et, int ia, int jb) -> double {
        double v = -2.0 * eb * eb * s1(et, ia, jb + 2) +
                   eb * (2 * jb + 1) * s1(et, ia, jb);
        if (jb >= 2) v -= 0.5 * jb * (jb - 1) * s1(et, ia, jb - 2);
        return v;
      };

      for (std::size_t ca = 0; ca < pa.size(); ++ca) {
        for (std::size_t cb = 0; cb < pb.size(); ++cb) {
          const int ix = pa[ca].x, iy = pa[ca].y, iz = pa[ca].z;
          const int jx = pb[cb].x, jy = pb[cb].y, jz = pb[cb].z;
          const double sx = s1(e.ex, ix, jx), sy = s1(e.ey, iy, jy),
                       sz = s1(e.ez, iz, jz);
          const double t = t1(e.ex, ix, jx) * sy * sz +
                           sx * t1(e.ey, iy, jy) * sz +
                           sx * sy * t1(e.ez, iz, jz);
          block(ca, cb) += a.norm_coef(i, ca) * b.norm_coef(j, cb) * t * pref;
        }
      }
    }
  }
  return block;
}

Matrix nuclear_block(const Shell& a, const Shell& b, const Molecule& mol) {
  const auto pa = cartesian_powers(a.l());
  const auto pb = cartesian_powers(b.l());
  const int lsum = a.l() + b.l();
  Matrix block(pa.size(), pb.size());
  for (std::size_t i = 0; i < a.num_primitives(); ++i) {
    for (std::size_t j = 0; j < b.num_primitives(); ++j) {
      const PairE e = make_pair_e(a, b, i, j);
      const double pref = 2.0 * std::numbers::pi / e.p;
      for (const chem::Atom& atom : mol.atoms()) {
        const Vec3 pc = e.pcen - atom.pos;
        const HermiteR r(lsum, e.p, pc[0], pc[1], pc[2]);
        for (std::size_t ca = 0; ca < pa.size(); ++ca) {
          for (std::size_t cb = 0; cb < pb.size(); ++cb) {
            double v = 0.0;
            for (int t = 0; t <= pa[ca].x + pb[cb].x; ++t)
              for (int u = 0; u <= pa[ca].y + pb[cb].y; ++u)
                for (int w = 0; w <= pa[ca].z + pb[cb].z; ++w)
                  v += e.ex(pa[ca].x, pb[cb].x, t) *
                       e.ey(pa[ca].y, pb[cb].y, u) *
                       e.ez(pa[ca].z, pb[cb].z, w) * r(t, u, w);
            block(ca, cb) += -atom.z * pref * v * a.norm_coef(i, ca) *
                             b.norm_coef(j, cb);
          }
        }
      }
    }
  }
  return block;
}

namespace {

Matrix assemble_symmetric(const BasisSet& basis,
                          Matrix (*block_fn)(const Shell&, const Shell&)) {
  const std::size_t n = basis.num_functions();
  Matrix m(n, n);
  for (std::size_t sa = 0; sa < basis.num_shells(); ++sa) {
    for (std::size_t sb = sa; sb < basis.num_shells(); ++sb) {
      const Matrix block = block_fn(basis.shell(sa), basis.shell(sb));
      const std::size_t oa = basis.first_function(sa);
      const std::size_t ob = basis.first_function(sb);
      for (std::size_t i = 0; i < block.rows(); ++i)
        for (std::size_t j = 0; j < block.cols(); ++j) {
          m(oa + i, ob + j) = block(i, j);
          m(ob + j, oa + i) = block(i, j);
        }
    }
  }
  return m;
}

}  // namespace

Matrix kinetic(const BasisSet& basis) {
  return assemble_symmetric(basis, &kinetic_block);
}

namespace {

// Dipole block via the moment shift x (x-B)^j = (x-B)^{j+1} + B (x-B)^j:
// <a| x_d |b> = S(i, j+1) + B_d S(i, j) along direction d, with plain
// overlaps in the other two directions. Needs jmax+1 in the E table.
Matrix dipole_block(const Shell& a, const Shell& b, std::size_t d,
                    const Vec3& origin) {
  const auto pa = cartesian_powers(a.l());
  const auto pb = cartesian_powers(b.l());
  Matrix block(pa.size(), pb.size());
  for (std::size_t i = 0; i < a.num_primitives(); ++i) {
    for (std::size_t j = 0; j < b.num_primitives(); ++j) {
      const PairE e = make_pair_e(a, b, i, j, /*extra=*/1);
      const double pref = std::pow(std::numbers::pi / e.p, 1.5);
      const double bshift = b.center()[d] - origin[d];

      auto s1 = [&](const HermiteE& et, int ia, int jb) {
        return et(ia, jb, 0);
      };
      const HermiteE* es[3] = {&e.ex, &e.ey, &e.ez};

      for (std::size_t ca = 0; ca < pa.size(); ++ca) {
        for (std::size_t cb = 0; cb < pb.size(); ++cb) {
          const int ia3[3] = {pa[ca].x, pa[ca].y, pa[ca].z};
          const int jb3[3] = {pb[cb].x, pb[cb].y, pb[cb].z};
          double val = 1.0;
          for (std::size_t dim = 0; dim < 3; ++dim) {
            if (dim == d)
              val *= s1(*es[dim], ia3[dim], jb3[dim] + 1) +
                     bshift * s1(*es[dim], ia3[dim], jb3[dim]);
            else
              val *= s1(*es[dim], ia3[dim], jb3[dim]);
          }
          block(ca, cb) += a.norm_coef(i, ca) * b.norm_coef(j, cb) * val * pref;
        }
      }
    }
  }
  return block;
}

}  // namespace

Matrix dipole(const BasisSet& basis, std::size_t d, const Vec3& origin) {
  const std::size_t n = basis.num_functions();
  Matrix m(n, n);
  for (std::size_t sa = 0; sa < basis.num_shells(); ++sa) {
    for (std::size_t sb = sa; sb < basis.num_shells(); ++sb) {
      const Matrix block =
          dipole_block(basis.shell(sa), basis.shell(sb), d, origin);
      const std::size_t oa = basis.first_function(sa);
      const std::size_t ob = basis.first_function(sb);
      for (std::size_t i = 0; i < block.rows(); ++i)
        for (std::size_t j = 0; j < block.cols(); ++j) {
          m(oa + i, ob + j) = block(i, j);
          m(ob + j, oa + i) = block(i, j);
        }
    }
  }
  return m;
}

Matrix nuclear_attraction(const BasisSet& basis, const Molecule& mol) {
  const std::size_t n = basis.num_functions();
  Matrix m(n, n);
  for (std::size_t sa = 0; sa < basis.num_shells(); ++sa) {
    for (std::size_t sb = sa; sb < basis.num_shells(); ++sb) {
      const Matrix block = nuclear_block(basis.shell(sa), basis.shell(sb), mol);
      const std::size_t oa = basis.first_function(sa);
      const std::size_t ob = basis.first_function(sb);
      for (std::size_t i = 0; i < block.rows(); ++i)
        for (std::size_t j = 0; j < block.cols(); ++j) {
          m(oa + i, ob + j) = block(i, j);
          m(ob + j, oa + i) = block(i, j);
        }
    }
  }
  return m;
}

Matrix core_hamiltonian(const BasisSet& basis, const Molecule& mol) {
  Matrix h = kinetic(basis);
  h += nuclear_attraction(basis, mol);
  return h;
}

}  // namespace mthfx::ints
