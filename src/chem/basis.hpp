#pragma once

// Contracted Cartesian Gaussian basis sets.
//
// A Shell is one contracted Gaussian of angular momentum l centered on an
// atom; it expands into (l+1)(l+2)/2 Cartesian components (6d convention
// for d shells, matching the Pople-basis reference energies we validate
// against). The BasisSet flattens a molecule's shells into a global AO
// index space used by the integral and SCF code.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "chem/molecule.hpp"

namespace mthfx::chem {

/// Number of Cartesian components for angular momentum l.
constexpr std::size_t num_cartesians(int l) {
  return static_cast<std::size_t>((l + 1) * (l + 2) / 2);
}

/// (lx, ly, lz) exponent triple of one Cartesian component.
struct CartPowers {
  int x = 0, y = 0, z = 0;
};

/// Component list for angular momentum l, in canonical order
/// (lx descending, then ly descending).
std::vector<CartPowers> cartesian_powers(int l);

/// Double factorial (2n-1)!! with (-1)!! = 1.
double odd_double_factorial(int n);

/// Normalization constant of the primitive Cartesian Gaussian
/// x^i y^j z^k exp(-a r^2).
double primitive_norm(double a, int i, int j, int k);

/// One contracted shell.
class Shell {
 public:
  /// `coefs` are contraction coefficients over *normalized* primitives
  /// (the EMSL/Basis-Set-Exchange convention). The constructor applies
  /// the overall contraction normalization.
  Shell(int l, std::size_t atom_index, Vec3 center,
        std::vector<double> exponents, std::vector<double> coefs);

  int l() const { return l_; }
  std::size_t atom_index() const { return atom_index_; }
  const Vec3& center() const { return center_; }
  std::size_t num_primitives() const { return exponents_.size(); }
  std::size_t num_functions() const { return num_cartesians(l_); }

  const std::vector<double>& exponents() const { return exponents_; }

  /// Contraction coefficient of primitive p including the contraction
  /// normalization but excluding the per-component primitive norm.
  double coef(std::size_t p) const { return coefs_[p]; }

  /// Fully normalized coefficient for primitive p and Cartesian
  /// component c: coef(p) * primitive_norm(exponent(p), powers of c).
  double norm_coef(std::size_t p, std::size_t c) const {
    return norm_coefs_[p * num_functions() + c];
  }

  /// Smallest primitive exponent — sets the spatial extent of the shell.
  double min_exponent() const;

 private:
  int l_;
  std::size_t atom_index_;
  Vec3 center_;
  std::vector<double> exponents_;
  std::vector<double> coefs_;
  std::vector<double> norm_coefs_;  // nprim x ncart, row-major
};

/// A molecule's full basis: shells plus the AO index map.
class BasisSet {
 public:
  BasisSet() = default;

  /// Build the named basis ("sto-3g", "6-31g", "6-31g*") for `mol`.
  /// Throws std::runtime_error for unknown basis names or elements the
  /// basis does not cover.
  static BasisSet build(const Molecule& mol, std::string_view name);

  void add_shell(Shell shell);

  const std::vector<Shell>& shells() const { return shells_; }
  std::size_t num_shells() const { return shells_.size(); }
  const Shell& shell(std::size_t s) const { return shells_.at(s); }

  /// Total number of atomic orbitals (Cartesian components).
  std::size_t num_functions() const { return nao_; }

  /// First AO index of shell s.
  std::size_t first_function(std::size_t s) const { return offsets_.at(s); }

  /// Evaluate all AOs at a point (used by the DFT grid integrator).
  /// `out` must have size num_functions().
  void evaluate(const Vec3& point, std::vector<double>& out) const;

  /// Evaluate AOs and their Cartesian gradients at a point.
  /// Each vector must have size num_functions().
  void evaluate_with_gradient(const Vec3& point, std::vector<double>& val,
                              std::vector<double>& dx, std::vector<double>& dy,
                              std::vector<double>& dz) const;

  /// Evaluate one shell's AOs and gradients at a point, writing
  /// shell(s).num_functions() entries starting at each pointer. The
  /// screened XC integrator (dft/xc_integrator.hpp) uses this to touch
  /// only the shells whose extent covers a grid point; the full
  /// evaluate_with_gradient above is this call looped over every shell.
  void evaluate_shell_with_gradient(std::size_t s, const Vec3& point,
                                    double* val, double* dx, double* dy,
                                    double* dz) const;

  /// Evaluate AOs with first and second Cartesian derivatives at a point
  /// (needed by the GGA gradient: d(sigma)/dR pulls in AO Hessians). The
  /// six second-derivative vectors follow the xx, xy, xz, yy, yz, zz
  /// order. All vectors are resized to num_functions().
  void evaluate_with_hessian(const Vec3& point, std::vector<double>& val,
                             std::vector<double>& dx, std::vector<double>& dy,
                             std::vector<double>& dz, std::vector<double>& dxx,
                             std::vector<double>& dxy, std::vector<double>& dxz,
                             std::vector<double>& dyy, std::vector<double>& dyz,
                             std::vector<double>& dzz) const;

 private:
  std::vector<Shell> shells_;
  std::vector<std::size_t> offsets_;
  std::size_t nao_ = 0;
};

namespace detail {
/// One element's shells in a basis table (exponents + per-l coefficients).
struct ElementBasisEntry {
  int l;
  std::vector<double> exponents;
  std::vector<double> coefs;
};

/// Shells for element z in the named basis. Implemented in basis_data.cpp.
std::vector<ElementBasisEntry> element_basis(std::string_view name, int z);
}  // namespace detail

}  // namespace mthfx::chem
