#include <array>
#include <stdexcept>
#include <string>

#include "chem/basis.hpp"
#include "chem/elements.hpp"

// Basis-set tables.
//
// STO-3G is generated from the universal Hehre–Stewart–Pople STO-3G
// least-squares expansion (JCP 51, 2657 (1969)): for each Slater shell
// with exponent zeta, the three Gaussian exponents are zeta^2 times fixed
// ratios, with fixed contraction coefficients. This reproduces the
// EMSL/Basis-Set-Exchange STO-3G tables to the digits we validate against
// (e.g. H: 3.42525091, 0.62391373, 0.16885540 from zeta = 1.24).
//
// 6-31G entries are transcribed Pople split-valence tables for the
// elements in the Li/air workloads; 6-31g* adds a single Cartesian-d
// polarization shell on non-hydrogen atoms.

namespace mthfx::chem::detail {

namespace {

struct Sto3gExpansion {
  std::array<double, 3> ratios;  // alpha_i / zeta^2
  std::array<double, 3> coefs;
};

// 1s, 2s, 2p, 3s, 3p expansions (Hehre, Stewart, Pople 1969).
constexpr Sto3gExpansion k1s{{2.22766000, 0.40577100, 0.10981800},
                             {0.15432897, 0.53532814, 0.44463454}};
constexpr Sto3gExpansion k2s{{0.99420300, 0.23103100, 0.07513860},
                             {-0.09996723, 0.39951283, 0.70011547}};
constexpr Sto3gExpansion k2p{{0.99420300, 0.23103100, 0.07513860},
                             {0.15591627, 0.60768372, 0.39195739}};
constexpr Sto3gExpansion k3s{{0.48285400, 0.13471500, 0.05272700},
                             {-0.21962037, 0.22559543, 0.90039843}};
constexpr Sto3gExpansion k3p{{0.48285400, 0.13471500, 0.05272700},
                             {0.01058760, 0.59516700, 0.46200100}};

struct Sto3gZetas {
  double zeta1s = 0.0;
  double zeta2sp = 0.0;  // 0 when the element has no L shell
  double zeta3sp = 0.0;  // 0 when the element has no M shell
};

// Pople's standard molecular Slater exponents.
Sto3gZetas sto3g_zetas(int z) {
  switch (z) {
    case 1: return {1.24, 0.0, 0.0};
    case 2: return {1.69, 0.0, 0.0};
    case 3: return {2.69, 0.80, 0.0};
    case 4: return {3.68, 1.15, 0.0};
    case 5: return {4.68, 1.50, 0.0};
    case 6: return {5.67, 1.72, 0.0};
    case 7: return {6.67, 1.95, 0.0};
    case 8: return {7.66, 2.25, 0.0};
    case 9: return {8.65, 2.55, 0.0};
    case 10: return {9.64, 2.88, 0.0};
    case 11: return {10.61, 3.48, 1.75};
    case 12: return {11.59, 3.92, 1.75};
    case 13: return {12.56, 4.36, 1.70};
    case 14: return {13.53, 4.83, 1.75};
    case 15: return {14.50, 5.31, 1.90};
    case 16: return {15.47, 5.79, 2.05};
    case 17: return {16.43, 6.26, 2.10};
    case 18: return {17.40, 6.74, 2.33};
    default:
      throw std::runtime_error("sto-3g: element not tabulated");
  }
}

std::vector<ElementBasisEntry> scaled(const Sto3gExpansion& exp, double zeta,
                                      int l) {
  std::vector<double> alphas(3), coefs(3);
  for (int i = 0; i < 3; ++i) {
    alphas[static_cast<std::size_t>(i)] = exp.ratios[static_cast<std::size_t>(i)] * zeta * zeta;
    coefs[static_cast<std::size_t>(i)] = exp.coefs[static_cast<std::size_t>(i)];
  }
  return {{l, alphas, coefs}};
}

std::vector<ElementBasisEntry> sto3g(int z) {
  const Sto3gZetas zt = sto3g_zetas(z);
  std::vector<ElementBasisEntry> shells = scaled(k1s, zt.zeta1s, 0);
  if (zt.zeta2sp > 0.0) {
    auto s2 = scaled(k2s, zt.zeta2sp, 0);
    auto p2 = scaled(k2p, zt.zeta2sp, 1);
    shells.push_back(s2.front());
    shells.push_back(p2.front());
  }
  if (zt.zeta3sp > 0.0) {
    auto s3 = scaled(k3s, zt.zeta3sp, 0);
    auto p3 = scaled(k3p, zt.zeta3sp, 1);
    shells.push_back(s3.front());
    shells.push_back(p3.front());
  }
  return shells;
}

std::vector<ElementBasisEntry> pople631g(int z) {
  switch (z) {
    case 1:
      return {{0,
               {18.7311370, 2.8253937, 0.6401217},
               {0.03349460, 0.23472695, 0.81375733}},
              {0, {0.1612778}, {1.0}}};
    case 3:
      return {{0,
               {642.41892, 96.798515, 22.091121, 6.2010703, 1.9351177,
                0.6367358},
               {0.0021426, 0.0162089, 0.0773156, 0.2457860, 0.4701890,
                0.3454708}},
              {0,
               {2.3249184, 0.6324306, 0.0790534},
               {-0.0350917, -0.1912328, 1.0839878}},
              {1,
               {2.3249184, 0.6324306, 0.0790534},
               {0.0089415, 0.1410095, 0.9453637}},
              {0, {0.0359620}, {1.0}},
              {1, {0.0359620}, {1.0}}};
    case 6:
      return {{0,
               {3047.5249, 457.36951, 103.94869, 29.210155, 9.2866630,
                3.1639270},
               {0.0018347, 0.0140373, 0.0688426, 0.2321844, 0.4679413,
                0.3623120}},
              {0,
               {7.8682724, 1.8812885, 0.5442493},
               {-0.1193324, -0.1608542, 1.1434564}},
              {1,
               {7.8682724, 1.8812885, 0.5442493},
               {0.0689991, 0.3164240, 0.7443083}},
              {0, {0.1687144}, {1.0}},
              {1, {0.1687144}, {1.0}}};
    case 7:
      return {{0,
               {4173.5110, 627.45790, 142.90210, 40.234330, 12.820210,
                4.3904370},
               {0.0018348, 0.0139950, 0.0685870, 0.2322410, 0.4690700,
                0.3604550}},
              {0,
               {11.626358, 2.7162800, 0.7722180},
               {-0.1149610, -0.1691180, 1.1458520}},
              {1,
               {11.626358, 2.7162800, 0.7722180},
               {0.0675800, 0.3239070, 0.7408950}},
              {0, {0.2120313}, {1.0}},
              {1, {0.2120313}, {1.0}}};
    case 8:
      return {{0,
               {5484.6717, 825.23495, 188.04696, 52.964500, 16.897570,
                5.7996353},
               {0.0018311, 0.0139501, 0.0684451, 0.2327143, 0.4701930,
                0.3585209}},
              {0,
               {15.539616, 3.5999336, 1.0137618},
               {-0.1107775, -0.1480263, 1.1307670}},
              {1,
               {15.539616, 3.5999336, 1.0137618},
               {0.0708743, 0.3397528, 0.7271586}},
              {0, {0.2700058}, {1.0}},
              {1, {0.2700058}, {1.0}}};
    default:
      throw std::runtime_error("6-31g: element " + std::string(element_symbol(z)) +
                               " not tabulated in this reproduction");
  }
}

double polarization_d_exponent(int z) {
  switch (z) {
    case 3: return 0.200;
    case 6: return 0.800;
    case 7: return 0.800;
    case 8: return 0.800;
    default:
      throw std::runtime_error("6-31g*: no d exponent tabulated for element");
  }
}

}  // namespace

std::vector<ElementBasisEntry> element_basis(std::string_view name, int z) {
  if (name == "sto-3g") return sto3g(z);
  if (name == "6-31g") return pople631g(z);
  if (name == "6-31g*") {
    auto shells = pople631g(z);
    if (z > 2) shells.push_back({2, {polarization_d_exponent(z)}, {1.0}});
    return shells;
  }
  throw std::runtime_error("unknown basis set: " + std::string(name));
}

}  // namespace mthfx::chem::detail
