#pragma once

// Periodic-table data for the elements used in the Li/air electrolyte
// studies (H through Ar covers every species in the paper's workloads:
// propylene carbonate C₄H₆O₃, Li₂O₂/LiO₂, DMSO C₂H₆OS, water, LiPF₆
// fragments).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mthfx::chem {

struct ElementInfo {
  int atomic_number;          ///< Z
  std::string_view symbol;    ///< "H", "Li", ...
  std::string_view name;      ///< "Hydrogen", ...
  double mass_amu;            ///< standard atomic weight
  double covalent_radius_a;   ///< covalent radius in Ångström
  double bragg_radius_a;      ///< Bragg–Slater radius (Becke partitioning)
};

/// Highest Z with tabulated data.
inline constexpr int kMaxZ = 18;

/// Data for atomic number z (1..kMaxZ). Throws std::out_of_range otherwise.
const ElementInfo& element(int z);

/// Lookup by symbol (case-sensitive standard form, e.g. "Li").
std::optional<int> atomic_number(std::string_view symbol);

/// Convenience: symbol for z.
std::string_view element_symbol(int z);

/// Unit conversions used across the code base.
inline constexpr double kBohrPerAngstrom = 1.8897261254578281;
inline constexpr double kAngstromPerBohr = 1.0 / kBohrPerAngstrom;
inline constexpr double kHartreePerEv = 1.0 / 27.211386245988;
inline constexpr double kEvPerHartree = 27.211386245988;
inline constexpr double kKcalPerMolPerHartree = 627.5094740631;
inline constexpr double kAmuToElectronMass = 1822.888486209;
/// Boltzmann constant in Hartree per Kelvin.
inline constexpr double kBoltzmannHaPerK = 3.166811563e-6;
/// One atomic unit of time in femtoseconds.
inline constexpr double kFsPerAtomicTime = 0.02418884326509;

}  // namespace mthfx::chem
