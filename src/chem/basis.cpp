#include "chem/basis.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mthfx::chem {

std::vector<CartPowers> cartesian_powers(int l) {
  std::vector<CartPowers> out;
  out.reserve(num_cartesians(l));
  for (int lx = l; lx >= 0; --lx)
    for (int ly = l - lx; ly >= 0; --ly) out.push_back({lx, ly, l - lx - ly});
  return out;
}

double odd_double_factorial(int n) {
  // (2n-1)!! for n >= 0; (2*0-1)!! = (-1)!! = 1.
  double r = 1.0;
  for (int k = 2 * n - 1; k > 1; k -= 2) r *= k;
  return r;
}

double primitive_norm(double a, int i, int j, int k) {
  const int l = i + j + k;
  const double dfact =
      odd_double_factorial(i) * odd_double_factorial(j) * odd_double_factorial(k);
  return std::pow(2.0 * a / std::numbers::pi, 0.75) *
         std::pow(4.0 * a, 0.5 * l) / std::sqrt(dfact);
}

Shell::Shell(int l, std::size_t atom_index, Vec3 center,
             std::vector<double> exponents, std::vector<double> coefs)
    : l_(l),
      atom_index_(atom_index),
      center_(center),
      exponents_(std::move(exponents)),
      coefs_(std::move(coefs)) {
  if (l_ < 0) throw std::invalid_argument("Shell: negative angular momentum");
  if (exponents_.size() != coefs_.size() || exponents_.empty())
    throw std::invalid_argument("Shell: exponent/coefficient size mismatch");

  // Contraction normalization: the self-overlap of the contracted
  // (l,0,0) component with normalized primitives must be 1. The
  // double-factorial factors cancel between primitive norms and the
  // moment integral, so the same scale applies to every component.
  const std::size_t np = exponents_.size();
  double self = 0.0;
  for (std::size_t p = 0; p < np; ++p) {
    for (std::size_t q = 0; q < np; ++q) {
      const double ap = exponents_[p], aq = exponents_[q];
      const double gamma = ap + aq;
      // <p|q> for (l,0,0) primitives with norms included:
      // N_p N_q (2l-1)!!/(2 gamma)^l (pi/gamma)^{3/2}
      const double np_ = primitive_norm(ap, l_, 0, 0);
      const double nq_ = primitive_norm(aq, l_, 0, 0);
      const double ovl = np_ * nq_ * odd_double_factorial(l_) /
                         std::pow(2.0 * gamma, l_) *
                         std::pow(std::numbers::pi / gamma, 1.5);
      self += coefs_[p] * coefs_[q] * ovl;
    }
  }
  const double scale = 1.0 / std::sqrt(self);
  for (double& c : coefs_) c *= scale;

  // Precompute fully normalized coefficients per (primitive, component).
  const auto powers = cartesian_powers(l_);
  norm_coefs_.resize(np * powers.size());
  for (std::size_t p = 0; p < np; ++p)
    for (std::size_t c = 0; c < powers.size(); ++c)
      norm_coefs_[p * powers.size() + c] =
          coefs_[p] *
          primitive_norm(exponents_[p], powers[c].x, powers[c].y, powers[c].z);
}

double Shell::min_exponent() const {
  double m = exponents_.front();
  for (double e : exponents_) m = std::min(m, e);
  return m;
}

void BasisSet::add_shell(Shell shell) {
  offsets_.push_back(nao_);
  nao_ += shell.num_functions();
  shells_.push_back(std::move(shell));
}

BasisSet BasisSet::build(const Molecule& mol, std::string_view name) {
  BasisSet basis;
  for (std::size_t i = 0; i < mol.size(); ++i) {
    const Atom& atom = mol.atom(i);
    for (const auto& entry : detail::element_basis(name, atom.z)) {
      basis.add_shell(
          Shell(entry.l, i, atom.pos, entry.exponents, entry.coefs));
    }
  }
  return basis;
}

void BasisSet::evaluate(const Vec3& point, std::vector<double>& out) const {
  out.assign(nao_, 0.0);
  for (std::size_t s = 0; s < shells_.size(); ++s) {
    const Shell& sh = shells_[s];
    const Vec3 r = point - sh.center();
    const double r2 = dot(r, r);
    const auto powers = cartesian_powers(sh.l());
    const std::size_t base = offsets_[s];
    for (std::size_t p = 0; p < sh.num_primitives(); ++p) {
      const double e = std::exp(-sh.exponents()[p] * r2);
      if (e < 1e-16) continue;
      for (std::size_t c = 0; c < powers.size(); ++c) {
        const double ang = std::pow(r[0], powers[c].x) *
                           std::pow(r[1], powers[c].y) *
                           std::pow(r[2], powers[c].z);
        out[base + c] += sh.norm_coef(p, c) * ang * e;
      }
    }
  }
}

void BasisSet::evaluate_shell_with_gradient(std::size_t s, const Vec3& point,
                                            double* val, double* dx,
                                            double* dy, double* dz) const {
  // d/dx [x^i e^{-a r^2}] = (i x^{i-1} - 2 a x^{i+1}) e^{-a r^2}; the
  // same pattern per Cartesian direction.
  auto powi = [](double x, int n) {
    double r = 1.0;
    for (int k = 0; k < n; ++k) r *= x;
    return r;
  };

  const Shell& sh = shells_[s];
  const std::size_t nf = sh.num_functions();
  std::fill(val, val + nf, 0.0);
  std::fill(dx, dx + nf, 0.0);
  std::fill(dy, dy + nf, 0.0);
  std::fill(dz, dz + nf, 0.0);

  const Vec3 r = point - sh.center();
  const double r2 = dot(r, r);
  const auto powers = cartesian_powers(sh.l());
  for (std::size_t p = 0; p < sh.num_primitives(); ++p) {
    const double a = sh.exponents()[p];
    const double e = std::exp(-a * r2);
    if (e < 1e-16) continue;
    for (std::size_t c = 0; c < powers.size(); ++c) {
      const int i = powers[c].x, j = powers[c].y, k = powers[c].z;
      const double xi = powi(r[0], i), yj = powi(r[1], j), zk = powi(r[2], k);
      const double nc = sh.norm_coef(p, c) * e;
      val[c] += nc * xi * yj * zk;
      const double dxi = (i > 0 ? i * powi(r[0], i - 1) : 0.0) -
                         2.0 * a * powi(r[0], i + 1);
      const double dyj = (j > 0 ? j * powi(r[1], j - 1) : 0.0) -
                         2.0 * a * powi(r[1], j + 1);
      const double dzk = (k > 0 ? k * powi(r[2], k - 1) : 0.0) -
                         2.0 * a * powi(r[2], k + 1);
      dx[c] += nc * dxi * yj * zk;
      dy[c] += nc * xi * dyj * zk;
      dz[c] += nc * xi * yj * dzk;
    }
  }
}

void BasisSet::evaluate_with_gradient(const Vec3& point,
                                      std::vector<double>& val,
                                      std::vector<double>& dx,
                                      std::vector<double>& dy,
                                      std::vector<double>& dz) const {
  val.resize(nao_);
  dx.resize(nao_);
  dy.resize(nao_);
  dz.resize(nao_);
  for (std::size_t s = 0; s < shells_.size(); ++s) {
    const std::size_t base = offsets_[s];
    evaluate_shell_with_gradient(s, point, val.data() + base,
                                 dx.data() + base, dy.data() + base,
                                 dz.data() + base);
  }
}

void BasisSet::evaluate_with_hessian(
    const Vec3& point, std::vector<double>& val, std::vector<double>& dx,
    std::vector<double>& dy, std::vector<double>& dz, std::vector<double>& dxx,
    std::vector<double>& dxy, std::vector<double>& dxz,
    std::vector<double>& dyy, std::vector<double>& dyz,
    std::vector<double>& dzz) const {
  val.assign(nao_, 0.0);
  dx.assign(nao_, 0.0);
  dy.assign(nao_, 0.0);
  dz.assign(nao_, 0.0);
  dxx.assign(nao_, 0.0);
  dxy.assign(nao_, 0.0);
  dxz.assign(nao_, 0.0);
  dyy.assign(nao_, 0.0);
  dyz.assign(nao_, 0.0);
  dzz.assign(nao_, 0.0);

  auto powi = [](double x, int n) {
    double r = 1.0;
    for (int k = 0; k < n; ++k) r *= x;
    return r;
  };
  // Per-dimension factors of x^i e^{-a x^2} with the shared Gaussian
  // pulled out: f = x^i, f' = i x^{i-1} - 2a x^{i+1},
  // f'' = i(i-1) x^{i-2} - 2a(2i+1) x^i + 4a^2 x^{i+2}. Mixed second
  // derivatives are products of first-derivative factors.
  auto d1 = [&](double x, int i, double a) {
    return (i > 0 ? i * powi(x, i - 1) : 0.0) - 2.0 * a * powi(x, i + 1);
  };
  auto d2 = [&](double x, int i, double a) {
    double v = -2.0 * a * (2 * i + 1) * powi(x, i) +
               4.0 * a * a * powi(x, i + 2);
    if (i > 1) v += i * (i - 1) * powi(x, i - 2);
    return v;
  };

  for (std::size_t s = 0; s < shells_.size(); ++s) {
    const Shell& sh = shells_[s];
    const Vec3 r = point - sh.center();
    const double r2 = dot(r, r);
    const auto powers = cartesian_powers(sh.l());
    const std::size_t base = offsets_[s];
    for (std::size_t p = 0; p < sh.num_primitives(); ++p) {
      const double a = sh.exponents()[p];
      const double e = std::exp(-a * r2);
      if (e < 1e-16) continue;
      for (std::size_t c = 0; c < powers.size(); ++c) {
        const int i = powers[c].x, j = powers[c].y, k = powers[c].z;
        const double fx = powi(r[0], i), fy = powi(r[1], j), fz = powi(r[2], k);
        const double gx = d1(r[0], i, a), gy = d1(r[1], j, a),
                     gz = d1(r[2], k, a);
        const double nc = sh.norm_coef(p, c) * e;
        val[base + c] += nc * fx * fy * fz;
        dx[base + c] += nc * gx * fy * fz;
        dy[base + c] += nc * fx * gy * fz;
        dz[base + c] += nc * fx * fy * gz;
        dxx[base + c] += nc * d2(r[0], i, a) * fy * fz;
        dyy[base + c] += nc * fx * d2(r[1], j, a) * fz;
        dzz[base + c] += nc * fx * fy * d2(r[2], k, a);
        dxy[base + c] += nc * gx * gy * fz;
        dxz[base + c] += nc * gx * fy * gz;
        dyz[base + c] += nc * fx * gy * gz;
      }
    }
  }
}

}  // namespace mthfx::chem
