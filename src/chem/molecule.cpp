#include "chem/molecule.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "chem/elements.hpp"

namespace mthfx::chem {

Vec3 operator+(const Vec3& a, const Vec3& b) {
  return {a[0] + b[0], a[1] + b[1], a[2] + b[2]};
}
Vec3 operator-(const Vec3& a, const Vec3& b) {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}
Vec3 operator*(double s, const Vec3& a) { return {s * a[0], s * a[1], s * a[2]}; }
double dot(const Vec3& a, const Vec3& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}
double norm(const Vec3& a) { return std::sqrt(dot(a, a)); }
double distance(const Vec3& a, const Vec3& b) { return norm(a - b); }

void Molecule::add_atom(int z, const Vec3& pos_bohr) {
  element(z);  // validates z
  atoms_.push_back({z, pos_bohr});
}

void Molecule::set_position(std::size_t i, const Vec3& pos_bohr) {
  atoms_.at(i).pos = pos_bohr;
}

int Molecule::num_electrons() const {
  int n = -charge_;
  for (const Atom& a : atoms_) n += a.z;
  return n;
}

double Molecule::nuclear_repulsion() const {
  double e = 0.0;
  for (std::size_t i = 0; i < atoms_.size(); ++i)
    for (std::size_t j = i + 1; j < atoms_.size(); ++j)
      e += atoms_[i].z * atoms_[j].z / distance(atoms_[i].pos, atoms_[j].pos);
  return e;
}

Vec3 Molecule::center_of_mass() const {
  Vec3 com{0, 0, 0};
  double mtot = 0.0;
  for (const Atom& a : atoms_) {
    const double m = element(a.z).mass_amu;
    com = com + m * a.pos;
    mtot += m;
  }
  if (mtot > 0.0) com = (1.0 / mtot) * com;
  return com;
}

void Molecule::translate(const Vec3& shift) {
  for (Atom& a : atoms_) a.pos = a.pos + shift;
}

void Molecule::append(const Molecule& other) {
  atoms_.insert(atoms_.end(), other.atoms_.begin(), other.atoms_.end());
  charge_ += other.charge_;
}

Molecule Molecule::from_xyz(const std::string& text, int charge) {
  std::istringstream in(text);
  std::size_t n = 0;
  if (!(in >> n)) throw std::runtime_error("from_xyz: missing atom count");
  std::string rest;
  std::getline(in, rest);      // remainder of count line
  std::getline(in, rest);      // comment line

  Molecule mol;
  mol.set_charge(charge);
  for (std::size_t i = 0; i < n; ++i) {
    std::string sym;
    double x = 0, y = 0, z = 0;
    if (!(in >> sym >> x >> y >> z))
      throw std::runtime_error("from_xyz: truncated coordinate block");
    const auto zn = atomic_number(sym);
    if (!zn) throw std::runtime_error("from_xyz: unknown element " + sym);
    mol.add_atom(*zn, {x * kBohrPerAngstrom, y * kBohrPerAngstrom,
                       z * kBohrPerAngstrom});
  }
  return mol;
}

std::string Molecule::to_xyz(const std::string& comment) const {
  std::ostringstream out;
  out << atoms_.size() << '\n' << comment << '\n';
  out.precision(10);
  out << std::fixed;
  for (const Atom& a : atoms_) {
    out << element_symbol(a.z) << ' ' << a.pos[0] * kAngstromPerBohr << ' '
        << a.pos[1] * kAngstromPerBohr << ' ' << a.pos[2] * kAngstromPerBohr
        << '\n';
  }
  return out.str();
}

}  // namespace mthfx::chem
