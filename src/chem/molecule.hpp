#pragma once

// Molecular geometry: atoms with positions in Bohr, plus the geometric
// operations the MD driver and workload generators need.

#include <array>
#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace mthfx::chem {

/// Cartesian triple in atomic units (Bohr). A named struct (rather than a
/// std::array alias) so the arithmetic operators are found by ADL from any
/// namespace.
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  double& operator[](std::size_t i) {
    assert(i < 3);
    return i == 0 ? x : (i == 1 ? y : z);
  }
  double operator[](std::size_t i) const {
    assert(i < 3);
    return i == 0 ? x : (i == 1 ? y : z);
  }
  friend bool operator==(const Vec3&, const Vec3&) = default;
};

Vec3 operator+(const Vec3& a, const Vec3& b);
Vec3 operator-(const Vec3& a, const Vec3& b);
Vec3 operator*(double s, const Vec3& a);
double dot(const Vec3& a, const Vec3& b);
double norm(const Vec3& a);
double distance(const Vec3& a, const Vec3& b);

struct Atom {
  int z = 0;          ///< atomic number
  Vec3 pos{0, 0, 0};  ///< position in Bohr
  friend bool operator==(const Atom&, const Atom&) = default;
};

class Molecule {
 public:
  Molecule() = default;
  explicit Molecule(std::vector<Atom> atoms, int charge = 0)
      : atoms_(std::move(atoms)), charge_(charge) {}

  const std::vector<Atom>& atoms() const { return atoms_; }
  std::size_t size() const { return atoms_.size(); }
  const Atom& atom(std::size_t i) const { return atoms_.at(i); }

  void add_atom(int z, const Vec3& pos_bohr);
  void set_position(std::size_t i, const Vec3& pos_bohr);

  int charge() const { return charge_; }
  void set_charge(int c) { charge_ = c; }

  /// Number of electrons = sum(Z) - charge.
  int num_electrons() const;

  /// Nuclear repulsion energy Σ_{i<j} Z_i Z_j / r_ij (Hartree).
  double nuclear_repulsion() const;

  /// Center of mass (Bohr).
  Vec3 center_of_mass() const;

  /// Translate every atom by `shift` (Bohr).
  void translate(const Vec3& shift);

  /// Merge another molecule's atoms into this one (charges add).
  void append(const Molecule& other);

  /// Parse XYZ-format text (coordinates in Ångström, per convention).
  /// Throws std::runtime_error on malformed input or unknown element.
  static Molecule from_xyz(const std::string& text, int charge = 0);

  /// Serialize to XYZ-format text (coordinates in Ångström).
  std::string to_xyz(const std::string& comment = "") const;

  /// Exact (bitwise-coordinate) equality — used by checkpoint round-trip
  /// verification, not geometric comparison.
  friend bool operator==(const Molecule&, const Molecule&) = default;

 private:
  std::vector<Atom> atoms_;
  int charge_ = 0;
};

}  // namespace mthfx::chem
