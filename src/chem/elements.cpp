#include "chem/elements.hpp"

#include <array>
#include <stdexcept>

namespace mthfx::chem {

namespace {

// Masses: CIAAW standard atomic weights. Covalent radii: Cordero 2008.
// Bragg–Slater radii: as tabulated by Becke (JCP 88, 2547 (1988)); H uses
// the customary 0.35 Å adjustment rather than Slater's 0.25 Å.
constexpr std::array<ElementInfo, kMaxZ> kElements{{
    {1, "H", "Hydrogen", 1.008, 0.31, 0.35},
    {2, "He", "Helium", 4.0026, 0.28, 0.35},
    {3, "Li", "Lithium", 6.94, 1.28, 1.45},
    {4, "Be", "Beryllium", 9.0122, 0.96, 1.05},
    {5, "B", "Boron", 10.81, 0.84, 0.85},
    {6, "C", "Carbon", 12.011, 0.76, 0.70},
    {7, "N", "Nitrogen", 14.007, 0.71, 0.65},
    {8, "O", "Oxygen", 15.999, 0.66, 0.60},
    {9, "F", "Fluorine", 18.998, 0.57, 0.50},
    {10, "Ne", "Neon", 20.180, 0.58, 0.45},
    {11, "Na", "Sodium", 22.990, 1.66, 1.80},
    {12, "Mg", "Magnesium", 24.305, 1.41, 1.50},
    {13, "Al", "Aluminium", 26.982, 1.21, 1.25},
    {14, "Si", "Silicon", 28.085, 1.11, 1.10},
    {15, "P", "Phosphorus", 30.974, 1.07, 1.00},
    {16, "S", "Sulfur", 32.06, 1.05, 1.00},
    {17, "Cl", "Chlorine", 35.45, 1.02, 1.00},
    {18, "Ar", "Argon", 39.948, 1.06, 1.00},
}};

}  // namespace

const ElementInfo& element(int z) {
  if (z < 1 || z > kMaxZ)
    throw std::out_of_range("element: atomic number out of tabulated range");
  return kElements[static_cast<std::size_t>(z - 1)];
}

std::optional<int> atomic_number(std::string_view symbol) {
  for (const auto& e : kElements)
    if (e.symbol == symbol) return e.atomic_number;
  return std::nullopt;
}

std::string_view element_symbol(int z) { return element(z).symbol; }

}  // namespace mthfx::chem
