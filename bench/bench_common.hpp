#pragma once

// Shared helpers for the experiment benches (E1-E7, A1-A3): workload
// construction, host-measured task-cost distributions, and paper-style
// table printing.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bgq/simulator.hpp"
#include "chem/basis.hpp"
#include "hfx/fock_builder.hpp"
#include "linalg/eigen.hpp"
#include "ints/one_electron.hpp"
#include "obs/json.hpp"
#include "scf/guess.hpp"
#include "workload/geometries.hpp"
#include "workload/replicate.hpp"

namespace mthfx::bench {

/// Directory for machine-readable bench records; override with
/// MTHFX_BENCH_JSON_DIR (default: working directory).
inline std::string bench_json_dir() {
  const char* dir = std::getenv("MTHFX_BENCH_JSON_DIR");
  return (dir && *dir) ? dir : ".";
}

/// Write one bench's structured record to BENCH_<name>.json. Every
/// experiment bench emits its tables through this alongside the printed
/// version, so scaling claims can be checked by tooling instead of by
/// scraping stdout (schema: docs/observability.md).
inline void write_bench_json(const std::string& name,
                             const obs::Json& payload) {
  const std::string path = bench_json_dir() + "/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[json] cannot write %s\n", path.c_str());
    return;
  }
  out << payload.dump(2) << "\n";
  std::printf("[json] wrote %s\n", path.c_str());
}

/// A host HFX run with per-task timings, used to calibrate the machine
/// simulator.
struct HostCalibration {
  hfx::HfxStats stats;
  std::vector<hfx::TaskCostRecord> records;
  std::size_t nao = 0;
  double wall_seconds = 0.0;
};

/// Run one exchange build on `molecules` propylene-carbonate copies
/// (lattice-replicated) and record per-task costs.
inline HostCalibration calibrate_pc_cluster(int molecules,
                                            double eps = 1e-8) {
  const auto unit = workload::propylene_carbonate();
  const auto cluster = workload::cluster_of(unit, molecules, 9.0);
  const auto basis = chem::BasisSet::build(cluster, "sto-3g");

  const auto s = ints::overlap(basis);
  const auto x = linalg::inverse_sqrt(s);
  const auto p = scf::core_guess_density(basis, cluster, x);

  hfx::HfxOptions opts;
  opts.eps_schwarz = eps;
  opts.record_task_costs = true;
  // Finest granularity (one ket pair per task): at machine scale the
  // makespan tail is set by the largest task, so the calibration must
  // measure the real minimum work unit, as the paper's scheme does.
  opts.target_task_cost = 1.0;
  hfx::FockBuilder builder(basis, opts);
  auto result = builder.exchange(p);

  HostCalibration cal;
  cal.records = std::move(result.stats.task_costs);
  result.stats.task_costs.clear();
  cal.stats = std::move(result.stats);
  cal.nao = basis.num_functions();
  cal.wall_seconds = cal.stats.wall_seconds;
  return cal;
}

/// Host timings at ~10 us granularity carry OS-scheduler noise: an
/// interrupt landing inside one task records as a fake multi-millisecond
/// task. The BG/Q compute-node kernel is noise-free (one of the
/// machine's defining properties), so we winsorize: costs above
/// `cap_over_median` times the median are clipped to that cap.
inline std::vector<hfx::TaskCostRecord> denoised(
    std::vector<hfx::TaskCostRecord> records, double cap_over_median = 20.0) {
  if (records.empty()) return records;
  std::vector<double> secs;
  secs.reserve(records.size());
  for (const auto& r : records) secs.push_back(r.seconds);
  std::nth_element(secs.begin(), secs.begin() + static_cast<std::ptrdiff_t>(secs.size() / 2),
                   secs.end());
  const double cap = cap_over_median * secs[secs.size() / 2];
  if (cap <= 0.0) return records;
  for (auto& r : records) r.seconds = std::min(r.seconds, cap);
  return records;
}

/// Scale the measured workload to a condensed-phase target: quartet-task
/// count grows ~quadratically with molecule count under screening (pair
/// count ~ N * neighbors). We extrapolate with an N^1.7 law between the
/// calibrated cluster and the target (sub-quadratic: Schwarz screening
/// removes far pairs).
inline bgq::SimWorkload scaled_workload(const HostCalibration& cal,
                                        int calibrated_molecules,
                                        int target_molecules) {
  bgq::SimWorkload w;
  const double ratio = static_cast<double>(target_molecules) /
                       static_cast<double>(calibrated_molecules);
  w.num_tasks = static_cast<std::int64_t>(
      static_cast<double>(cal.stats.num_tasks) * std::pow(ratio, 1.7));
  const double nao_target = static_cast<double>(cal.nao) * ratio;
  w.reduction_bytes =
      static_cast<std::int64_t>(8.0 * nao_target * nao_target);
  return w;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule() {
  std::printf(
      "--------------------------------------------------------------------"
      "----\n");
}

}  // namespace mthfx::bench
