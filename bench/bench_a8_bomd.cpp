// A8 — BOMD surface-acceleration ablation: MD throughput on the PBE0
// surface before and after this repo's analytic-gradient + cross-step
// acceleration work. Three configurations run the same NVE trajectory:
//
//   fd_cold        finite-difference forces, no caching — the pre-A8
//                  behavior for semilocal/hybrid functionals (6N+1
//                  SCF solves per MD step)
//   analytic_cold  analytic ks_gradient forces, acceleration disabled
//                  (cold core-guess start every solve)
//   analytic_warm  analytic forces + per-geometry wavefunction cache,
//                  density-matrix extrapolation warm starts, and
//                  persistent FockBuilder rebind (the default surface)
//
// The table reports MD steps/hour, SCF solves and iterations per step
// (from the surface's obs counters), and max NVE energy drift — the
// drift column certifies that the fast path is still conserving energy,
// not just faster.
//
// `--smoke` runs a 2-step H2 trajectory and exits nonzero if the
// accelerated surface's counters violate the one-solve-per-step
// contract — the CI invocation in scripts/run_tests.sh. Without it, the
// full water/PBE0 table runs, emits BENCH_bomd.json, and hands off to
// google-benchmark for the registered timing loops.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "md/integrator.hpp"

namespace {

using namespace mthfx;

// Forces the base-class central-difference path over an inner surface,
// the way ScfPotential::forces behaved for semilocal functionals before
// the analytic ks_gradient landed.
struct FdSurface : md::PotentialSurface {
  const md::ScfPotential* inner = nullptr;
  double energy(const chem::Molecule& mol) const override {
    return inner->energy(mol);
  }
};

struct ConfigResult {
  std::string name;
  double secs_per_step = 0.0;
  double steps_per_hour = 0.0;
  double solves_per_step = 0.0;
  double iters_per_step = 0.0;
  double max_drift = 0.0;
  std::uint64_t warm_starts = 0;
  std::uint64_t cache_hits = 0;
};

ConfigResult run_config(const std::string& name, const chem::Molecule& m,
                        const scf::KsOptions& ks, const md::MdOptions& opts,
                        const md::SurfaceAccel& accel, bool use_fd) {
  md::ScfPotential pot("sto-3g", ks, accel);
  FdSurface fd;
  fd.inner = &pot;
  fd.fd_step = 1e-3;
  md::PotentialSurface& surface =
      use_fd ? static_cast<md::PotentialSurface&>(fd) : pot;

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = md::run_bomd(m, surface, opts);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double steps = static_cast<double>(opts.num_steps);
  ConfigResult r;
  r.name = name;
  r.secs_per_step = secs / steps;
  r.steps_per_hour = 3600.0 / r.secs_per_step;
  r.solves_per_step =
      static_cast<double>(pot.metrics().counter_total("md.scf_solves")) / steps;
  r.iters_per_step =
      static_cast<double>(pot.metrics().counter_total("md.scf_iterations")) /
      steps;
  r.max_drift = result.max_energy_drift();
  r.warm_starts = pot.metrics().counter_total("md.warm_starts");
  r.cache_hits = pot.metrics().counter_total("md.surface_cache_hits");
  return r;
}

obs::Json make_row(const ConfigResult& r, double baseline_steps_per_hour) {
  const double speedup = r.steps_per_hour / baseline_steps_per_hour;
  std::printf("%-15s %-11.2f %-12.1f %-10.1f %-10.1f %-12.2e %-8.2f\n",
              r.name.c_str(), r.secs_per_step, r.steps_per_hour,
              r.solves_per_step, r.iters_per_step, r.max_drift, speedup);
  obs::Json row = obs::Json::object();
  row["config"] = r.name;
  row["seconds_per_step"] = r.secs_per_step;
  row["md_steps_per_hour"] = r.steps_per_hour;
  row["scf_solves_per_step"] = r.solves_per_step;
  row["scf_iterations_per_step"] = r.iters_per_step;
  row["max_energy_drift"] = r.max_drift;
  row["warm_starts"] = r.warm_starts;
  row["surface_cache_hits"] = r.cache_hits;
  row["speedup_vs_fd"] = speedup;
  return row;
}

// The accelerated surface's hard contract: one SCF per MD step (the
// integrator's energy+forces pair hits the cache), every post-initial
// solve warm-started, and the trajectory still conserving energy.
bool accel_contract_holds(const ConfigResult& warm, int num_steps,
                          double drift_bound) {
  const auto steps = static_cast<double>(num_steps);
  const double expected_solves = (steps + 1.0) / steps;
  bool ok = true;
  if (warm.solves_per_step > expected_solves + 1e-12) {
    std::fprintf(stderr,
                 "A8: accelerated surface ran %.2f solves/step, expected "
                 "%.2f (cache miss inside a step)\n",
                 warm.solves_per_step, expected_solves);
    ok = false;
  }
  if (warm.cache_hits != static_cast<std::uint64_t>(num_steps) + 1) {
    std::fprintf(stderr, "A8: expected %d cache hits, saw %llu\n",
                 num_steps + 1,
                 static_cast<unsigned long long>(warm.cache_hits));
    ok = false;
  }
  if (warm.warm_starts != static_cast<std::uint64_t>(num_steps)) {
    std::fprintf(stderr, "A8: expected %d warm starts, saw %llu\n", num_steps,
                 static_cast<unsigned long long>(warm.warm_starts));
    ok = false;
  }
  if (!(warm.max_drift < drift_bound)) {
    std::fprintf(stderr, "A8: NVE drift %.3e exceeds bound %.3e\n",
                 warm.max_drift, drift_bound);
    ok = false;
  }
  return ok;
}

obs::Json ablation_table(bool smoke, bool* contract_ok) {
  scf::KsOptions ks;
  ks.functional = "pbe0";
  ks.grid.radial_points = 30;
  ks.grid.angular_points = 26;

  chem::Molecule m;
  if (smoke) {
    m.add_atom(1, {0, 0, 0});
    m.add_atom(1, {0, 0, 1.55});
  } else {
    m = workload::by_name("water");
  }

  md::MdOptions opts;
  opts.timestep_fs = 0.15;
  opts.num_steps = smoke ? 2 : 6;

  bench::print_header(
      smoke ? "A8: BOMD surface ablation (smoke: H2, PBE0/STO-3G, NVE)"
            : "A8: BOMD surface ablation (water, PBE0/STO-3G, NVE)");
  std::printf("%-15s %-11s %-12s %-10s %-10s %-12s %-8s\n", "config", "s/step",
              "steps/hour", "solves/st", "iters/st", "max drift", "speedup");
  bench::print_rule();

  md::SurfaceAccel off;
  off.cache_wavefunction = false;
  off.warm_start = false;
  off.reuse_builder = false;

  const auto fd = run_config("fd_cold", m, ks, opts, off, /*use_fd=*/true);
  const auto cold =
      run_config("analytic_cold", m, ks, opts, off, /*use_fd=*/false);
  const auto warm = run_config("analytic_warm", m, ks, opts,
                               md::SurfaceAccel{}, /*use_fd=*/false);

  obs::Json rows = obs::Json::array();
  rows.push_back(make_row(fd, fd.steps_per_hour));
  rows.push_back(make_row(cold, fd.steps_per_hour));
  rows.push_back(make_row(warm, fd.steps_per_hour));

  *contract_ok = accel_contract_holds(warm, opts.num_steps, 2e-4);

  std::printf(
      "\nfd_cold is the pre-A8 semilocal/hybrid force path (6N+1 SCF "
      "solves per step); analytic_warm is the shipped default.\n");
  return rows;
}

// Per-call timing for the accelerated force path: the energy()+forces()
// pair the integrator issues each step, at a fresh geometry every
// iteration so the cache never short-circuits the solve being measured.
void BM_Pbe0WarmStep(benchmark::State& state) {
  scf::KsOptions ks;
  ks.functional = "pbe0";
  ks.grid.radial_points = 30;
  ks.grid.angular_points = 26;
  md::ScfPotential pot("sto-3g", ks);
  chem::Molecule m;
  m.add_atom(1, {0, 0, 0});
  m.add_atom(1, {0, 0, 1.55});
  double bond = 1.55;
  for (auto _ : state) {
    bond += 1e-3;  // march the geometry so each pair is a genuine step
    m.set_position(1, {0, 0, bond});
    benchmark::DoNotOptimize(pot.energy(m));
    benchmark::DoNotOptimize(pot.forces(m));
  }
}
BENCHMARK(BM_Pbe0WarmStep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  bool contract_ok = true;
  obs::Json record = obs::Json::object();
  record["bench"] = "bomd";
  record["ablation"] = ablation_table(smoke, &contract_ok);
  if (!smoke) bench::write_bench_json("bomd", record);

  if (!contract_ok) return 1;
  if (smoke) {
    std::printf("A8 smoke: accelerated surface honors its counters.\n");
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
