// E3 — maximum usable parallelism: the paper claims a >20-fold improvement
// over the state of the art in the number of threads that can be used
// productively. We sweep both schemes over the rack table and report the
// largest thread count that still delivers >= 50% strong-scaling
// efficiency (the usual "usable scalability" criterion).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mthfx;

void sota_comparison_table() {
  bench::print_header(
      "E3: maximum usable thread count, this work (512-PC system) vs. "
      "SOTA-style flat-MPI scheme (64-PC, its largest memory-feasible "
      "system)");
  const auto cal = bench::calibrate_pc_cluster(2);
  const auto dist = bgq::EmpiricalCostDistribution::from_records(
      bench::denoised(cal.records));
  // Each scheme gets the largest system it can actually hold: the
  // block-distributed scheme scales the science target; the replicated
  // baseline is capped by per-rank memory (a 512-PC exchange matrix is
  // ~3.5 GB, far beyond a flat-MPI rank's ~250 MB share of a BG/Q node).
  const auto w_dyn = bench::scaled_workload(cal, 2, 512);
  const auto w_stat = bench::scaled_workload(cal, 2, 64);

  std::printf("%-7s %-12s %-22s %-22s\n", "racks", "threads",
              "this-work efficiency", "baseline efficiency");
  bench::print_rule();

  bgq::SimResult base_dyn, base_stat;
  std::int64_t max_dyn = 0, max_stat = 0;
  for (int racks : bgq::supported_rack_counts()) {
    const auto machine = bgq::machine_for_racks(racks);
    bgq::SimOptions dyn;
    dyn.scheme = bgq::SimScheme::kDynamicHierarchical;
    bgq::SimOptions stat;
    stat.scheme = bgq::SimScheme::kStaticBlockCyclic;
    const auto rd = bgq::simulate_step(machine, w_dyn, dist, dyn);
    const auto rs = bgq::simulate_step(machine, w_stat, dist, stat);
    if (racks == 1) {
      base_dyn = rd;
      base_stat = rs;
    }
    const double ed = bgq::parallel_efficiency(base_dyn, rd);
    const double es = bgq::parallel_efficiency(base_stat, rs);
    if (ed >= 0.5) max_dyn = machine.num_threads();
    if (es >= 0.5) max_stat = machine.num_threads();
    std::printf("%-7d %-12lld %-22.3f %-22.3f\n", racks,
                static_cast<long long>(machine.num_threads()), ed, es);
  }
  bench::print_rule();
  std::printf("max threads at >=50%% efficiency:  this work %lld, baseline "
              "%lld  (ratio %.1fx)\n",
              static_cast<long long>(max_dyn),
              static_cast<long long>(max_stat),
              max_stat > 0 ? static_cast<double>(max_dyn) /
                                 static_cast<double>(max_stat)
                           : 0.0);
  std::printf(
      "paper claim: 'more than 20-fold improvement as compared to the "
      "current state of the art'.\n");
}

void BM_SimulateStep96Racks(benchmark::State& state) {
  const auto cal = bench::calibrate_pc_cluster(1);
  const auto dist = bgq::EmpiricalCostDistribution::from_records(
      bench::denoised(cal.records));
  auto w = bench::scaled_workload(cal, 1, 64);
  const auto machine = bgq::machine_for_racks(96);
  for (auto _ : state) {
    auto r = bgq::simulate_step(machine, w, dist);
    benchmark::DoNotOptimize(r.makespan_seconds);
  }
}
BENCHMARK(BM_SimulateStep96Racks)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sota_comparison_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
