// A4 — ablation of task granularity: the task bag's chunk size trades
// scheduling overhead (too fine) against makespan tail and imbalance
// (too coarse). The paper's scheme tunes this; here we sweep the task
// target cost on the real kernel and project each resulting task
// population onto the 96-rack machine.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mthfx;

void granularity_table() {
  bench::print_header(
      "A4: task granularity vs. machine efficiency (PC dimer calibration, "
      "96-rack projection)");

  const auto unit = workload::propylene_carbonate();
  const auto cluster = workload::cluster_of(unit, 2, 9.0);
  const auto basis = chem::BasisSet::build(cluster, "sto-3g");
  const auto s = ints::overlap(basis);
  const auto x = linalg::inverse_sqrt(s);
  const auto p = scf::core_guess_density(basis, cluster, x);

  std::printf("%-16s %-10s %-14s %-16s %-16s\n", "target cost", "tasks",
              "host time/s", "96-rack time/s", "96-rack eff");
  bench::print_rule();

  for (double target : {1.0, 1e4, 1e6, 1e8}) {
    hfx::HfxOptions opts;
    opts.eps_schwarz = 1e-8;
    opts.record_task_costs = true;
    opts.target_task_cost = target;
    hfx::FockBuilder builder(basis, opts);
    auto result = builder.exchange(p);

    const auto dist = bgq::EmpiricalCostDistribution::from_records(
        bench::denoised(result.stats.task_costs));

    bench::HostCalibration cal;
    cal.stats = result.stats;
    cal.nao = basis.num_functions();
    const auto w = bench::scaled_workload(cal, 2, 512);

    const auto machine1 = bgq::machine_for_racks(1);
    const auto machine96 = bgq::machine_for_racks(96);
    const auto r1 = bgq::simulate_step(machine1, w, dist);
    const auto r96 = bgq::simulate_step(machine96, w, dist);
    const double eff = bgq::parallel_efficiency(r1, r96);

    std::printf("%-16.0e %-10zu %-14.3f %-16.4f %-16.3f\n", target,
                result.stats.num_tasks, result.stats.wall_seconds,
                r96.makespan_seconds, eff);
  }
  std::printf(
      "\nfinest granularity maximizes machine-scale efficiency (the tail "
      "is one quartet); coarse tasks lose efficiency to stragglers.\n");
}

}  // namespace

int main(int argc, char** argv) {
  granularity_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
