// E6 — electrolyte screening: the paper's application result is that
// propylene carbonate is degraded by the lithium peroxide discharge
// product and that alternative solvents (e.g. DMSO-class) are more
// stable. We compute the electronic-stability indicators the screening
// relies on: HOMO-LUMO gaps (RHF and PBE0) and the interaction energy of
// each solvent with Li2O2 at contact distance.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include <algorithm>

#include "chem/elements.hpp"
#include "scf/properties.hpp"
#include "scf/rhf.hpp"
#include "scf/rks.hpp"

namespace {

using namespace mthfx;

scf::ScfOptions fast_scf() {
  scf::ScfOptions o;
  o.hfx.eps_schwarz = 1e-9;
  o.energy_tolerance = 1e-8;
  o.diis_tolerance = 1e-5;
  return o;
}

double rhf_energy(const chem::Molecule& m) {
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  const auto r = scf::rhf(m, basis, fast_scf());
  if (!r.converged) std::printf("  [warn] RHF unconverged\n");
  return r.energy;
}

void gap_table() {
  bench::print_header("E6a: frontier-orbital stability indicators");
  std::printf("%-10s %-18s %-18s %-18s\n", "solvent", "RHF gap/eV",
              "PBE0 gap/eV", "PBE gap/eV");
  bench::print_rule();
  for (const char* name : {"pc", "dmso"}) {
    const auto m = workload::by_name(name);
    const auto basis = chem::BasisSet::build(m, "sto-3g");
    const auto rhf_result = scf::rhf(m, basis, fast_scf());

    auto gap_for = [&](const char* functional) {
      scf::KsOptions ks;
      ks.scf = fast_scf();
      ks.functional = functional;
      ks.grid.radial_points = 25;
      ks.grid.angular_points = 26;
      const auto r = scf::rks(m, basis, ks);
      return scf::homo_lumo_gap(r.scf, m) * chem::kEvPerHartree;
    };

    std::printf("%-10s %-18.2f %-18.2f %-18.2f\n", name,
                scf::homo_lumo_gap(rhf_result, m) * chem::kEvPerHartree,
                gap_for("pbe0"), gap_for("pbe"));
  }
  std::printf(
      "\nthe hybrid (PBE0) gap sits between RHF and PBE — the accuracy "
      "argument for hybrid-functional screening.\n");
}

void interaction_table() {
  bench::print_header(
      "E6b: solvent + Li2O2 interaction energies (RHF/STO-3G, contact vs. "
      "separated)");
  std::printf("%-10s %-18s %-18s %-20s\n", "solvent", "E(complex)/Ha",
              "E(separated)/Ha", "interaction/kcal/mol");
  bench::print_rule();

  const auto li2o2 = workload::lithium_peroxide();
  const double e_li2o2 = rhf_energy(li2o2);

  for (const char* name : {"pc", "dmso"}) {
    const auto solvent = workload::by_name(name);
    const double e_solvent = rhf_energy(solvent);

    // Contact complex: peroxide placed above the solvent's polar end.
    chem::Molecule complex_mol = solvent;
    chem::Molecule adduct = li2o2;
    adduct.translate({0.0, 4.5 * chem::kBohrPerAngstrom,
                      1.5 * chem::kBohrPerAngstrom});
    complex_mol.append(adduct);
    const double e_complex = rhf_energy(complex_mol);

    const double e_sep = e_solvent + e_li2o2;
    std::printf("%-10s %-18.6f %-18.6f %-20.2f\n", name, e_complex, e_sep,
                (e_complex - e_sep) * chem::kKcalPerMolPerHartree);
  }
  std::printf(
      "\nboth solvents coordinate the peroxide (Li+ solvation); the "
      "*degradation* risk is the chemistry probed below and in E7.\n");
}

void electrophilic_site_table() {
  bench::print_header(
      "E6c: electrophilic-site analysis (Mulliken charges, RHF/STO-3G)");
  std::printf("%-10s %-26s %-22s\n", "solvent", "most positive C charge",
              "dipole moment/D");
  bench::print_rule();
  for (const char* name : {"pc", "dmso"}) {
    const auto m = workload::by_name(name);
    const auto basis = chem::BasisSet::build(m, "sto-3g");
    const auto r = scf::rhf(m, basis, fast_scf());
    const auto q = scf::mulliken_charges(m, basis, r.density);
    double cmax = -10.0;
    for (std::size_t i = 0; i < m.size(); ++i)
      if (m.atom(i).z == 6) cmax = std::max(cmax, q[i]);
    std::printf("%-10s %-26.3f %-22.2f\n", name, cmax,
                scf::dipole_moment_debye(m, basis, r.density));
  }
  std::printf(
      "\nPC's carbonyl carbon is the strongly electrophilic site that "
      "peroxide/superoxide attacks (ring opening); DMSO carries no "
      "comparably activated carbon — the paper's stability argument.\n");
}

void BM_SolventRhf(benchmark::State& state) {
  const auto m = workload::by_name(state.range(0) == 0 ? "pc" : "dmso");
  const auto basis = chem::BasisSet::build(m, "sto-3g");
  for (auto _ : state) {
    auto r = scf::rhf(m, basis, fast_scf());
    benchmark::DoNotOptimize(r.energy);
  }
}
BENCHMARK(BM_SolventRhf)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  gap_table();
  interaction_table();
  electrophilic_site_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
