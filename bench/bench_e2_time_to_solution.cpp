// E2 — time-to-solution: the paper claims >10x runtime reduction against
// "directly comparable approaches". The comparable approach here is the
// static block-cyclic quartet distribution with replicated matrices and a
// flat reduction; the paper's scheme is the hierarchical dynamic bag with
// tree reduction. Same measured task-cost population for both.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mthfx;

obs::Json time_to_solution_table() {
  bench::print_header(
      "E2: time to solution, dynamic-bag scheme vs. directly comparable "
      "static scheme (64-PC workload)");
  const auto cal = bench::calibrate_pc_cluster(2);
  const auto dist = bgq::EmpiricalCostDistribution::from_records(
      bench::denoised(cal.records));
  const auto w = bench::scaled_workload(cal, 2, 64);

  std::printf("%-7s %-12s %-14s %-14s %-8s\n", "racks", "threads",
              "this work/s", "baseline/s", "ratio");
  bench::print_rule();
  obs::Json rows = obs::Json::array();
  for (int racks : bgq::supported_rack_counts()) {
    const auto machine = bgq::machine_for_racks(racks);
    bgq::SimOptions dyn;
    dyn.scheme = bgq::SimScheme::kDynamicHierarchical;
    bgq::SimOptions stat;
    stat.scheme = bgq::SimScheme::kStaticBlockCyclic;
    const auto rd = bgq::simulate_step(machine, w, dist, dyn);
    const auto rs = bgq::simulate_step(machine, w, dist, stat);
    std::printf("%-7d %-12lld %-14.4f %-14.4f %-8.1f\n", racks,
                static_cast<long long>(machine.num_threads()),
                rd.makespan_seconds, rs.makespan_seconds,
                rs.makespan_seconds / rd.makespan_seconds);
    obs::Json row = obs::Json::object();
    row["racks"] = racks;
    row["dynamic"] = bgq::to_json(rd);
    row["static_baseline"] = bgq::to_json(rs);
    row["ratio"] = rs.makespan_seconds / rd.makespan_seconds;
    rows.push_back(std::move(row));
  }
  std::printf(
      "\npaper claim: improvement 'can surpass a 10-fold decrease in "
      "runtime'.\nnote: at the paper's full 512-molecule scale the "
      "replicated baseline needs gigabytes per MPI rank and does not fit "
      "a BG/Q node at all — the comparison above uses the largest "
      "baseline-feasible system.\n");
  return rows;
}

// Host-level companion: dynamic vs. static on the real kernel.
void BM_HostScheme(benchmark::State& state) {
  const auto unit = workload::propylene_carbonate();
  const auto basis = chem::BasisSet::build(unit, "sto-3g");
  const auto s = ints::overlap(basis);
  const auto x = linalg::inverse_sqrt(s);
  const auto p = scf::core_guess_density(basis, unit, x);
  hfx::HfxOptions opts;
  opts.eps_schwarz = 1e-8;
  opts.schedule = static_cast<hfx::HfxSchedule>(state.range(0));
  hfx::FockBuilder builder(basis, opts);
  for (auto _ : state) {
    auto r = builder.exchange(p);
    benchmark::DoNotOptimize(r.k.data());
  }
}
BENCHMARK(BM_HostScheme)
    ->Arg(static_cast<int>(mthfx::hfx::HfxSchedule::kDynamicBag))
    ->Arg(static_cast<int>(mthfx::hfx::HfxSchedule::kStaticBlock))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  obs::Json record = obs::Json::object();
  record["bench"] = "e2_time_to_solution";
  record["time_to_solution"] = time_to_solution_table();
  bench::write_bench_json("e2_time_to_solution", record);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
