// A3 — ablation of the result-assembly strategy (DESIGN.md design choice
// #3): pipelined tree allreduce on the torus vs. flat serialized
// reduction, across machine sizes and exchange-matrix sizes.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "bgq/collectives.hpp"

namespace {

using namespace mthfx;

void reduction_table() {
  bench::print_header(
      "A3: K-matrix assembly cost, distributed blocks vs. replicated "
      "matrix (seconds)");
  std::printf("%-7s %-10s %-16s %-16s %-10s\n", "racks", "nao",
              "distributed/s", "replicated/s", "ratio");
  bench::print_rule();
  for (int racks : {1, 8, 96}) {
    const auto machine = bgq::machine_for_racks(racks);
    for (std::int64_t nao : {2000, 8000, 20000}) {
      const std::int64_t bytes = 8 * nao * nao;
      const double dist = bgq::distributed_reduce_seconds(machine, bytes);
      const double repl = bgq::replicated_allreduce_seconds(machine, bytes);
      std::printf("%-7d %-10lld %-16.3e %-16.3e %-10.1f\n", racks,
                  static_cast<long long>(nao), dist, repl, repl / dist);
    }
  }
  std::printf(
      "\nreplicated assembly moves the full matrix through every rank's "
      "share of the links; distributing the blocks is why the paper's "
      "scheme still scales at 98,304 nodes.\n");
}

// Host-side companion: the actual thread-private K reduction.
void BM_ThreadPrivateReduction(benchmark::State& state) {
  const std::size_t nao = static_cast<std::size_t>(state.range(0));
  const std::size_t nthreads = 8;
  std::vector<linalg::Matrix> partials(nthreads, linalg::Matrix(nao, nao, 0.5));
  for (auto _ : state) {
    linalg::Matrix total(nao, nao);
    for (const auto& p : partials) total += p;
    benchmark::DoNotOptimize(total.data());
  }
}
BENCHMARK(BM_ThreadPrivateReduction)->Arg(64)->Arg(256)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  reduction_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
