// A10 — near-linear SCF cost curve on liquid propylene-carbonate boxes
// (the paper's electrolyte workload at condensed-phase density).
//
// Full mode runs the blocked/purification pipeline (scf::sparse_rhf) on
// 8/27/64/125-molecule PC boxes packed at 1.205 g/cm³ by
// workload::box_of, records wall time, pair-list survival, block-nnz
// fractions and the Fock-build (J/K) phase time per size, fits the
// log-log cost exponent of the Fock-build phase over the top half of the
// sizes, and exits nonzero unless the exponent is <= 1.3 — the
// "near-linear" contract of the sparsity pipeline. One measured blocked
// build is also exported as an EmpiricalCostDistribution and replayed
// through the BG/Q discrete-event simulator, connecting the host cost
// curve to the machine model the other benches use.
//
// `--smoke` runs the two smallest boxes for a handful of iterations each
// (no convergence requirement, no exponent fit, no JSON) and exits
// nonzero if the pipeline breaks its structural contract — finite
// energy, surviving pairs, nnz fractions in (0, 1]. This is the tier-1
// entry (scripts/run_tests.sh).
//
// Writes BENCH_scaling.json (full mode only) — committed at the repo
// root so the measured curve rides with the code that produced it.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "bgq/machine.hpp"
#include "scf/rhf.hpp"
#include "scf/sparse_scf.hpp"

namespace {

using namespace mthfx;

constexpr double kPcLiquidDensity = 1.205;  // g/cm³
constexpr std::uint64_t kBoxSeed = 11;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SizeRow {
  int molecules = 0;
  std::size_t nbf = 0;
  std::size_t num_pairs = 0;
  std::size_t pair_candidates = 0;
  std::size_t unscreened_pairs = 0;
  double wall_seconds = 0.0;
  double jk_seconds = 0.0;  ///< Σ blocked J/K build time across the solve
  double fock_build_seconds = 0.0;  ///< one exchange build, converged P
  std::uint64_t fock_quartets = 0;
  double density_nnz = 0.0;
  double fock_nnz = 0.0;
  double energy = 0.0;
  bool converged = false;
  int iterations = 0;
};

/// Superposition-of-molecular-densities guess: one dense solve of the
/// unit molecule (41 bf, milliseconds), tiled down the box diagonal.
/// Every copy is a rigid translation of the unit, so its converged
/// density is exact in the copy's own AO block; the SCF then only has
/// to relax the (weak, insulating) inter-molecular response — a few
/// iterations instead of building up the whole density from the core
/// guess. Same guess at every size, so the cost curve stays comparable.
linalg::Matrix fragment_guess(const chem::Molecule& unit,
                              const chem::BasisSet& unit_basis,
                              int molecules, std::size_t nbf) {
  scf::ScfOptions opts;
  opts.hfx.num_threads = 1;
  const auto r = scf::rhf(unit, unit_basis, opts);
  const std::size_t nu = unit_basis.num_functions();
  linalg::Matrix p(nbf, nbf);
  for (int m = 0; m < molecules; ++m) {
    const std::size_t off = static_cast<std::size_t>(m) * nu;
    for (std::size_t i = 0; i < nu; ++i)
      for (std::size_t j = 0; j < nu; ++j)
        p(off + i, off + j) = r.density(i, j);
  }
  return p;
}

SizeRow run_box(int molecules, bool smoke) {
  const auto unit = workload::propylene_carbonate();
  const auto box =
      workload::box_of(unit, molecules, kPcLiquidDensity, kBoxSeed);
  const auto basis = chem::BasisSet::build(box, "sto-3g");

  scf::ScfOptions opts;
  opts.hfx.num_threads = 1;
  opts.hfx.sparsity.mode = hfx::SparsityMode::kBlocked;
  // Bench-grade thresholds: the curve measures how the Fock-build phase
  // *scales*, and the defaults (eps 1e-10, drop 1e-12) are validation
  // settings that keep every block alive at these box sizes. The looser
  // chain here is uniform across sizes, so the exponent is unaffected
  // while the largest box stays affordable on one host core.
  opts.hfx.eps_schwarz = 1e-6;
  opts.hfx.sparsity.drop_tol = 1e-8;
  opts.energy_tolerance = 1e-6;
  opts.diis_tolerance = 1e-3;
  // The fragment guess puts the first density close to the answer;
  // incremental dP builds then shrink monotonically, and a mid-solve
  // full rebuild would only re-pay the expensive first J sweep.
  opts.full_rebuild_every = 1000;
  const auto guess = fragment_guess(unit, chem::BasisSet::build(unit, "sto-3g"),
                                    molecules, basis.num_functions());
  opts.initial_density = std::make_shared<linalg::Matrix>(guess);
  if (smoke) opts.max_iterations = 3;  // structural pass, not convergence

  scf::SparseScfInfo info;
  const double t0 = now_seconds();
  const auto result = scf::sparse_rhf(box, basis, opts, &info);
  const double t1 = now_seconds();

  SizeRow row;
  row.molecules = molecules;
  row.nbf = info.nbf;
  row.num_pairs = info.num_pairs;
  row.pair_candidates = info.pair_candidates;
  row.unscreened_pairs = basis.num_shells() * (basis.num_shells() + 1) / 2;
  row.wall_seconds = t1 - t0;
  row.jk_seconds = info.jk_seconds_total;
  row.iterations = static_cast<int>(result.log.size());
  row.density_nnz = info.density_nnz;
  row.fock_nnz = info.fock_nnz;
  row.energy = result.energy;
  row.converged = result.converged;

  // The Fock-build phase the near-linear contract is made on: one
  // exchange build against the settled density — the unit of work the
  // paper distributes over the machine, and the phase where the density
  // screen turns the insulating box's locality into sub-quadratic cost.
  // (The Coulomb term is excluded on purpose: a Schwarz product carries
  // no bra-ket distance decay, so J's quartet count is Theta(N^2) by
  // construction until a multipole bound exists; the exchange phase is
  // where sparsity pays.)
  const hfx::FockBuilder builder(basis, opts.hfx);
  const auto part = scf::shell_aligned_partition(basis, 64);
  const auto p_blk = linalg::BlockSparseMatrix::from_dense(
      result.density, part, opts.hfx.sparsity.drop_tol);
  const auto ex = builder.exchange_blocked(p_blk);
  row.fock_build_seconds = ex.stats.wall_seconds;
  row.fock_quartets = ex.stats.screening.quartets_computed;
  return row;
}

/// Least-squares slope of log(cost) vs log(molecules) over rows[first..).
double fitted_exponent(const std::vector<SizeRow>& rows, std::size_t first,
                       double SizeRow::* cost) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(rows.size() - first);
  for (std::size_t i = first; i < rows.size(); ++i) {
    const double x = std::log(static_cast<double>(rows[i].molecules));
    const double y = std::log(rows[i].*cost);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

bool structural_ok(const SizeRow& r) {
  return std::isfinite(r.energy) && r.num_pairs > 0 &&
         r.pair_candidates >= r.num_pairs &&
         r.pair_candidates <= r.unscreened_pairs && r.density_nnz > 0.0 &&
         r.density_nnz <= 1.0 && r.fock_nnz > 0.0 && r.fock_nnz <= 1.0 &&
         r.jk_seconds > 0.0 && r.fock_build_seconds > 0.0 &&
         r.fock_quartets > 0;
}

obs::Json to_json(const SizeRow& r) {
  obs::Json j = obs::Json::object();
  j["molecules"] = r.molecules;
  j["nbf"] = r.nbf;
  j["num_pairs"] = r.num_pairs;
  j["pair_candidates"] = r.pair_candidates;
  j["unscreened_pairs"] = r.unscreened_pairs;
  j["wall_seconds"] = r.wall_seconds;
  j["jk_seconds"] = r.jk_seconds;
  j["fock_build_seconds"] = r.fock_build_seconds;
  j["fock_quartets"] = r.fock_quartets;
  j["density_nnz"] = r.density_nnz;
  j["fock_nnz"] = r.fock_nnz;
  j["energy"] = r.energy;
  j["converged"] = r.converged;
  j["iterations"] = r.iterations;
  return j;
}

/// One measured blocked build replayed at machine scale: per-task costs
/// from the blocked J/K build feed the simulator's empirical sampler —
/// the same host-calibration path the E-series benches use, now sourced
/// from the sparsity pipeline instead of the dense task bag.
obs::Json simulate_blocked_build(int molecules) {
  const auto unit = workload::propylene_carbonate();
  const auto box =
      workload::box_of(unit, molecules, kPcLiquidDensity, kBoxSeed);
  const auto basis = chem::BasisSet::build(box, "sto-3g");

  const auto s = ints::overlap(basis);
  const auto x = linalg::inverse_sqrt(s);
  const auto p = scf::core_guess_density(basis, box, x);

  hfx::HfxOptions opts;
  opts.num_threads = 1;
  opts.sparsity.mode = hfx::SparsityMode::kBlocked;
  opts.eps_schwarz = 1e-6;  // same chain as the cost curve above
  opts.record_task_costs = true;
  const hfx::FockBuilder builder(basis, opts);
  const auto part = scf::shell_aligned_partition(basis, 64);
  const auto p_blk = linalg::BlockSparseMatrix::from_dense(p, part, 1e-12);
  auto ex = builder.exchange_blocked(p_blk);

  const auto costs = bgq::EmpiricalCostDistribution::from_records(
      bench::denoised(std::move(ex.stats.task_costs)));

  bgq::SimWorkload w;
  w.num_tasks = static_cast<std::int64_t>(ex.stats.num_tasks);
  const double nao = static_cast<double>(basis.num_functions());
  w.reduction_bytes = static_cast<std::int64_t>(8.0 * nao * nao);

  const auto machine = bgq::machine_for_racks(1);
  const auto sim = bgq::simulate_step(machine, w, costs);

  obs::Json j = obs::Json::object();
  j["molecules"] = molecules;
  j["tasks"] = w.num_tasks;
  j["cost_mean_seconds"] = costs.mean();
  j["cost_max_seconds"] = costs.max();
  j["racks"] = 1;
  j["sim"] = bgq::to_json(sim);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const std::vector<int> sizes = smoke
                                     ? std::vector<int>{2, 4}
                                     : std::vector<int>{2, 4, 8, 27, 64, 125};

  bench::print_header(
      smoke ? "A10: sparsity pipeline smoke (2/4 PC molecules, 3 iters)"
            : "A10: near-linear SCF scaling on liquid PC boxes "
              "(STO-3G, 1.205 g/cm3)");
  std::printf("%-10s %-6s %-12s %-10s %-10s %-10s %-10s %-8s\n", "molecules",
              "nbf", "pairs/unscr", "cand", "jk [s]", "fock [s]", "wall [s]",
              "P-nnz");
  bench::print_rule();

  std::vector<SizeRow> rows;
  bool ok = true;
  for (int n : sizes) {
    const SizeRow r = run_box(n, smoke);
    std::printf("%-10d %-6zu %7zu/%-7zu %-10zu %-10.2f %-10.2f %-10.2f %-8.3f\n",
                r.molecules, r.nbf, r.num_pairs, r.unscreened_pairs,
                r.pair_candidates, r.jk_seconds, r.fock_build_seconds,
                r.wall_seconds, r.density_nnz);
    std::fflush(stdout);
    if (!structural_ok(r)) {
      std::fprintf(stderr, "A10: structural contract broken at %d molecules\n",
                   n);
      ok = false;
    }
    if (!smoke && !r.converged) {
      std::fprintf(stderr, "A10: SCF did not converge at %d molecules\n", n);
      ok = false;
    }
    rows.push_back(r);
  }

  if (smoke) {
    if (ok) std::printf("A10 smoke: sparsity pipeline honors its contract.\n");
    return ok ? 0 : 1;
  }

  // The near-linear claim is made on the Fock-build (exchange) phase
  // over the top half of the sizes — the asymptotic regime; small boxes
  // still pay dense-ish prefactors.
  const std::size_t first = rows.size() / 2;
  const double fock_exponent =
      fitted_exponent(rows, first, &SizeRow::fock_build_seconds);
  const double jk_exponent = fitted_exponent(rows, first, &SizeRow::jk_seconds);
  const double wall_exponent =
      fitted_exponent(rows, first, &SizeRow::wall_seconds);
  std::printf(
      "\nFock-build (exchange) cost exponent over top half: %.3f "
      "(full J+K solve total: %.3f; full-solve wall: %.3f)\n",
      fock_exponent, jk_exponent, wall_exponent);

  obs::Json record = obs::Json::object();
  record["bench"] = "scaling";
  record["workload"] = "propylene carbonate box, 1.205 g/cm3, sto-3g";
  record["box_seed"] = static_cast<long long>(kBoxSeed);
  obs::Json arr = obs::Json::array();
  for (const auto& r : rows) arr.push_back(to_json(r));
  record["sizes"] = std::move(arr);
  record["fock_exponent_top_half"] = fock_exponent;
  record["jk_exponent_top_half"] = jk_exponent;
  record["wall_exponent_top_half"] = wall_exponent;
  record["bgq_sim"] = simulate_blocked_build(27);
  bench::write_bench_json("scaling", record);

  if (fock_exponent > 1.3) {
    std::fprintf(stderr,
                 "A10: Fock-build exponent %.3f exceeds the 1.3 contract\n",
                 fock_exponent);
    ok = false;
  }
  return ok ? 0 : 1;
}
