// E1 — the paper's headline figure: strong scaling of one HFX build up to
// 6,291,456 threads (96 BG/Q racks) with near-perfect parallel efficiency.
//
// Host part: the real HFX kernel is strong-scaled across host threads and
// its per-task costs are measured. Machine part: the measured cost
// distribution drives the BG/Q discrete-event simulator over the rack
// sweep for a condensed-phase-sized system (512 PC molecules).

#include <benchmark/benchmark.h>

#include <thread>

#include "bench_common.hpp"

namespace {

using namespace mthfx;

const bench::HostCalibration& calibration() {
  static const bench::HostCalibration cal = bench::calibrate_pc_cluster(2);
  return cal;
}

obs::Json host_strong_scaling_table() {
  bench::print_header(
      "E1a: host strong scaling of the real HFX kernel (2 PC molecules)");
  std::printf("%-10s %-14s %-10s %-12s\n", "threads", "time/s", "speedup",
              "efficiency");
  bench::print_rule();

  const auto unit = workload::propylene_carbonate();
  const auto cluster = workload::cluster_of(unit, 2, 9.0);
  const auto basis = chem::BasisSet::build(cluster, "sto-3g");
  const auto s = ints::overlap(basis);
  const auto x = linalg::inverse_sqrt(s);
  const auto p = scf::core_guess_density(basis, cluster, x);

  obs::Json rows = obs::Json::array();
  double t1 = 0.0;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (std::size_t nt = 1; nt <= hw; nt *= 2) {
    hfx::HfxOptions opts;
    opts.eps_schwarz = 1e-8;
    opts.num_threads = nt;
    hfx::FockBuilder builder(basis, opts);
    const auto result = builder.exchange(p);
    if (nt == 1) t1 = result.stats.wall_seconds;
    const double speedup = t1 / result.stats.wall_seconds;
    std::printf("%-10zu %-14.4f %-10.2f %-12.3f\n", nt,
                result.stats.wall_seconds, speedup,
                speedup / static_cast<double>(nt));
    obs::Json row = obs::Json::object();
    row["threads"] = nt;
    row["speedup"] = speedup;
    row["efficiency"] = speedup / static_cast<double>(nt);
    row["stats"] = hfx::to_json(result.stats);
    rows.push_back(std::move(row));
  }
  return rows;
}

obs::Json machine_strong_scaling_table() {
  bench::print_header(
      "E1b: BG/Q strong scaling, 512-PC condensed-phase workload "
      "(simulated machine, measured task costs)");
  const auto& cal = calibration();
  const auto dist = bgq::EmpiricalCostDistribution::from_records(
      bench::denoised(cal.records));
  const auto w = bench::scaled_workload(cal, 2, 512);
  std::printf("tasks in system: %lld   mean task cost: %.3g s\n",
              static_cast<long long>(w.num_tasks), dist.mean());
  std::printf("%-7s %-9s %-11s %-12s %-11s %-12s\n", "racks", "nodes",
              "threads", "time/s", "speedup", "efficiency");
  bench::print_rule();

  obs::Json table = obs::Json::object();
  table["num_tasks"] = w.num_tasks;
  table["mean_task_cost_seconds"] = dist.mean();
  obs::Json rows = obs::Json::array();
  bgq::SimResult base;
  for (int racks : bgq::supported_rack_counts()) {
    const auto machine = bgq::machine_for_racks(racks);
    const auto r = bgq::simulate_step(machine, w, dist);
    if (racks == 1) base = r;
    const double eff = bgq::parallel_efficiency(base, r);
    const double speedup = base.makespan_seconds / r.makespan_seconds;
    std::printf("%-7d %-9lld %-11lld %-12.4f %-11.1f %-12.3f\n", racks,
                static_cast<long long>(machine.num_nodes()),
                static_cast<long long>(machine.num_threads()),
                r.makespan_seconds, speedup, eff);
    obs::Json row = bgq::to_json(r);
    row["racks"] = racks;
    row["nodes"] = machine.num_nodes();
    row["speedup"] = speedup;
    row["efficiency"] = eff;
    rows.push_back(std::move(row));
  }
  table["rows"] = std::move(rows);
  std::printf(
      "\npaper claim: near-perfect parallel efficiency at 6,291,456 "
      "threads (96 racks).\n");
  return table;
}

void BM_HostExchangeBuild(benchmark::State& state) {
  const auto unit = workload::propylene_carbonate();
  const auto basis = chem::BasisSet::build(unit, "sto-3g");
  const auto s = ints::overlap(basis);
  const auto x = linalg::inverse_sqrt(s);
  const auto p = scf::core_guess_density(basis, unit, x);
  hfx::HfxOptions opts;
  opts.eps_schwarz = 1e-8;
  opts.num_threads = static_cast<std::size_t>(state.range(0));
  hfx::FockBuilder builder(basis, opts);
  for (auto _ : state) {
    auto r = builder.exchange(p);
    benchmark::DoNotOptimize(r.k.data());
  }
}
BENCHMARK(BM_HostExchangeBuild)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  obs::Json record = obs::Json::object();
  record["bench"] = "e1_strong_scaling";
  record["host_strong_scaling"] = host_strong_scaling_table();
  record["machine_strong_scaling"] = machine_strong_scaling_table();
  bench::write_bench_json("e1_strong_scaling", record);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
