// A5 — ablation of fault tolerance: how much makespan each execution
// scheme loses as nodes fail or straggle mid-step. Both schemes see the
// *same* per-node fault draws (a pure function of seed and node id), so
// the comparison isolates the scheduling policy: the dynamic bag
// re-dispatches a dead node's in-flight chunk to the earliest survivor,
// while the static block-cyclic assignment has no other taker and the
// step stalls behind the redone block.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mthfx;

void fault_tolerance_table() {
  bench::print_header(
      "A5: makespan degradation under node failures (PC dimer calibration, "
      "1-rack projection, identical fault draws per scheme)");

  const auto cal = bench::calibrate_pc_cluster(2);
  const auto dist =
      bgq::EmpiricalCostDistribution::from_records(bench::denoised(cal.records));
  const auto w = bench::scaled_workload(cal, 2, 128);
  const auto machine = bgq::machine_for_racks(1);

  auto simulate = [&](bgq::SimScheme scheme, double failure_rate,
                      double straggler_rate) {
    bgq::SimOptions opts;
    opts.scheme = scheme;
    opts.node_failure_rate = failure_rate;
    opts.straggler_rate = straggler_rate;
    opts.straggler_slowdown = 4.0;
    return bgq::simulate_step(machine, w, dist, opts);
  };

  const auto clean_dyn =
      simulate(bgq::SimScheme::kDynamicHierarchical, 0.0, 0.0);
  const auto clean_sta = simulate(bgq::SimScheme::kStaticBlockCyclic, 0.0, 0.0);

  std::printf("%-12s %-12s %-18s %-18s %-10s\n", "fail rate", "stragglers",
              "dynamic degrade", "static degrade", "winner");
  bench::print_rule();

  obs::Json rows = obs::Json::array();
  bool dynamic_always_better = true;
  const double straggler_rate = 0.02;
  for (double rate : {0.005, 0.01, 0.02, 0.05}) {
    const auto dyn =
        simulate(bgq::SimScheme::kDynamicHierarchical, rate, straggler_rate);
    const auto sta =
        simulate(bgq::SimScheme::kStaticBlockCyclic, rate, straggler_rate);
    const double deg_dyn =
        dyn.makespan_seconds / clean_dyn.makespan_seconds - 1.0;
    const double deg_sta =
        sta.makespan_seconds / clean_sta.makespan_seconds - 1.0;
    dynamic_always_better = dynamic_always_better && deg_dyn < deg_sta;

    std::printf("%-12.3f %-12.3f %-18.4f %-18.4f %-10s\n", rate,
                straggler_rate, deg_dyn, deg_sta,
                deg_dyn < deg_sta ? "dynamic" : "static");

    obs::Json row = obs::Json::object();
    row["node_failure_rate"] = rate;
    row["straggler_rate"] = straggler_rate;
    row["dynamic"] = bgq::to_json(dyn);
    row["static"] = bgq::to_json(sta);
    row["dynamic_degradation"] = deg_dyn;
    row["static_degradation"] = deg_sta;
    rows.push_back(std::move(row));
  }

  std::printf(
      "\nthe dynamic bag absorbs failures by re-dispatching chunks; static "
      "assignment pays the full redo of every dead node's block.\n");

  obs::Json record = obs::Json::object();
  record["num_tasks"] = w.num_tasks;
  record["nodes"] = machine.num_nodes();
  record["clean_dynamic"] = bgq::to_json(clean_dyn);
  record["clean_static"] = bgq::to_json(clean_sta);
  record["rows"] = std::move(rows);
  record["dynamic_degrades_less"] = dynamic_always_better;
  bench::write_bench_json("a5_fault_tolerance", record);
}

}  // namespace

int main(int argc, char** argv) {
  fault_tolerance_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
