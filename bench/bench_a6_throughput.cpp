// A6 — throughput of the screening engine: jobs/second and queue-wait
// percentiles for a 200-job screening campaign at 1/2/4/8 concurrent
// jobs, against the sequential single-shot baseline (the same inputs run
// one by one through app::run_structured, exactly as mthfx_cli would).
//
// Two campaigns are measured:
//
//   latency-bound — every job carries a deterministic injected stall
//     (fault stall injection, the resilience layer's model of the
//     non-CPU phases a production screening job spends in checkpoint
//     I/O, data staging, and collective waits). Concurrent jobs overlap
//     those stalls, so throughput scales with concurrency even on a
//     single core; this is the regime the acceptance claim (>2x at
//     concurrency 4) targets.
//
//   compute-bound — pure SCF jobs. Concurrency can only help here when
//     per-job thread slices beat one wide job (small screening jobs
//     parallelize poorly inside), so gains track the core count.
//
// Both campaigns verify bit-identical energies between every concurrency
// level and the sequential baseline.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "engine/report.hpp"
#include "engine/scheduler.hpp"
#include "fault/injector.hpp"
#include "parallel/thread_pool.hpp"
#include "workload/geometries.hpp"

namespace {

using namespace mthfx;

engine::Job make_job(const chem::Molecule& mol, int index, bool stall) {
  engine::Job job;
  job.name = "screen." + std::to_string(index);
  job.input.method = "hf";
  job.input.basis = "sto-3g";
  job.input.eps_schwarz = 1e-8;
  job.input.molecule = mol;
  if (stall) {
    // Deterministic stall on every task: the injected model of the
    // job's non-CPU time (I/O, staging, collectives).
    job.input.fault.stall_rate = 1.0;
    job.input.fault.stall_seconds = 2e-3;
    job.input.fault.seed = 1234 + static_cast<std::uint64_t>(index);
  }
  return job;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

struct CampaignMeasurement {
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  double wait_p50_ms = 0.0, wait_p90_ms = 0.0, wait_p99_ms = 0.0;
  std::size_t done = 0, failed = 0;
  std::vector<double> energies;  ///< by job id, for bit-identity checks
};

CampaignMeasurement run_concurrent(const std::vector<engine::Job>& jobs,
                                   std::size_t concurrency) {
  engine::EngineOptions opts;
  opts.concurrency = concurrency;
  opts.queue_capacity = jobs.size();
  opts.cache = false;  // throughput must come from execution, not reuse
  engine::JobScheduler scheduler(opts);
  scheduler.start();

  obs::Stopwatch watch;
  for (const engine::Job& job : jobs) scheduler.submit(job);
  const auto records = scheduler.drain();

  CampaignMeasurement m;
  m.wall_seconds = watch.seconds();
  m.jobs_per_second = static_cast<double>(jobs.size()) / m.wall_seconds;
  std::vector<double> waits;
  for (const auto& r : records) {
    if (r.state == engine::JobState::kDone)
      ++m.done;
    else
      ++m.failed;
    waits.push_back(r.wait_seconds);
    m.energies.push_back(r.result.energy);  // records are id-ordered
  }
  m.wait_p50_ms = 1e3 * percentile(waits, 0.50);
  m.wait_p90_ms = 1e3 * percentile(waits, 0.90);
  m.wait_p99_ms = 1e3 * percentile(waits, 0.99);
  return m;
}

CampaignMeasurement run_sequential(const std::vector<engine::Job>& jobs) {
  CampaignMeasurement m;
  obs::Stopwatch watch;
  for (const engine::Job& job : jobs) {
    const auto r = app::run_structured(job.input);
    if (r.ok)
      ++m.done;
    else
      ++m.failed;
    m.energies.push_back(r.energy);
  }
  m.wall_seconds = watch.seconds();
  m.jobs_per_second = static_cast<double>(jobs.size()) / m.wall_seconds;
  return m;
}

bool bit_identical(const CampaignMeasurement& a,
                   const CampaignMeasurement& b) {
  return a.energies == b.energies;  // exact double comparison, on purpose
}

obs::Json measurement_json(const CampaignMeasurement& m) {
  obs::Json row = obs::Json::object();
  row["wall_seconds"] = m.wall_seconds;
  row["jobs_per_second"] = m.jobs_per_second;
  row["wait_p50_ms"] = m.wait_p50_ms;
  row["wait_p90_ms"] = m.wait_p90_ms;
  row["wait_p99_ms"] = m.wait_p99_ms;
  row["done"] = m.done;
  row["failed"] = m.failed;
  return row;
}

obs::Json throughput_table(const std::string& title,
                           const std::vector<engine::Job>& jobs,
                           double* speedup_c4_out) {
  bench::print_header(title);
  const auto seq = run_sequential(jobs);
  std::printf("%-14s %12s %10s %10s %10s %10s %6s\n", "mode", "jobs/s",
              "wall/s", "p50 wait", "p90 wait", "p99 wait", "bit=");
  bench::print_rule();
  std::printf("%-14s %12.2f %10.3f %10s %10s %10s %6s\n", "sequential",
              seq.jobs_per_second, seq.wall_seconds, "-", "-", "-", "ref");

  obs::Json rows = obs::Json::array();
  for (const std::size_t concurrency : {1u, 2u, 4u, 8u}) {
    const auto m = run_concurrent(jobs, concurrency);
    const bool identical = bit_identical(m, seq);
    const double speedup = m.jobs_per_second / seq.jobs_per_second;
    if (concurrency == 4 && speedup_c4_out) *speedup_c4_out = speedup;
    std::printf("%-14s %12.2f %10.3f %9.2fms %9.2fms %9.2fms %6s\n",
                ("concurrency " + std::to_string(concurrency)).c_str(),
                m.jobs_per_second, m.wall_seconds, m.wait_p50_ms,
                m.wait_p90_ms, m.wait_p99_ms, identical ? "yes" : "NO");
    obs::Json row = measurement_json(m);
    row["concurrency"] = concurrency;
    row["speedup_vs_sequential"] = speedup;
    row["bit_identical_to_sequential"] = identical;
    rows.push_back(std::move(row));
  }
  obs::Json table = obs::Json::object();
  table["num_jobs"] = jobs.size();
  table["sequential"] = measurement_json(seq);
  table["rows"] = std::move(rows);
  return table;
}

void throughput_tables() {
  const auto h2 = workload::h2();
  const int num_jobs = 200;

  std::vector<engine::Job> latency_jobs, compute_jobs;
  for (int i = 0; i < num_jobs; ++i) {
    latency_jobs.push_back(make_job(h2, i, /*stall=*/true));
    compute_jobs.push_back(make_job(h2, i, /*stall=*/false));
  }

  double speedup_latency = 0.0, speedup_compute = 0.0;
  obs::Json record = obs::Json::object();
  record["latency_bound"] = throughput_table(
      "A6: engine throughput, latency-bound 200-job campaign (2 ms "
      "injected stall per task = modeled I/O/staging time)",
      latency_jobs, &speedup_latency);
  record["compute_bound"] = throughput_table(
      "A6: engine throughput, compute-bound 200-job campaign (pure SCF; "
      "gains track the core count)",
      compute_jobs, &speedup_compute);
  record["speedup_c4_latency"] = speedup_latency;
  record["speedup_c4_compute"] = speedup_compute;
  record["claim_c4_over_2x"] = speedup_latency > 2.0;

  std::printf(
      "\nconcurrency-4 speedup: %.2fx latency-bound (claim >2x: %s), "
      "%.2fx compute-bound on %zu core(s)\n",
      speedup_latency, speedup_latency > 2.0 ? "yes" : "NO",
      speedup_compute, parallel::resolve_thread_count(0));

  bench::write_bench_json("a6_throughput", record);
}

}  // namespace

int main(int argc, char** argv) {
  throughput_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
