// A7 — ERI kernel microbenchmark: quartet throughput by L-class for the
// batched SIMD kernel and the scalar sparse Hermite kernel (compacted
// E-lists + ket-side contraction intermediates) against the
// pre-optimization dense reference kernel, on the same precomputed pair
// data. The kernel variant is selected by the EriKernel flag on
// ShellPairHermite, so every column runs from identical inputs and is
// cross-checked element by element.
//
// Workloads replicate each shell at several jittered centers, the way a
// molecular row repeats the same contraction pattern across atoms —
// that is what gives the batched kernel full-width (8-lane) batches;
// a stream of all-distinct structures would degenerate to width 1.
//
// Also records the reduce-phase scaling (hfx.reduce_seconds at 1 vs 8
// threads) for the row-blocked tree reduction.
//
// `--smoke` runs the table with small iteration counts and exits nonzero
// on any batched/sparse/dense disagreement — the counts-only CI
// invocation in scripts/run_tests.sh. Without it, the table runs at full
// iteration counts, emits BENCH_hfx_kernel.json, and then hands off to
// google-benchmark for the registered timing loops.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ints/eri.hpp"
#include "ints/eri_batch.hpp"

namespace {

using namespace mthfx;
using ints::EriKernel;
using ints::ShellPairHermite;

// A small synthetic shell of the given angular momentum: 3 primitives
// with TZ-ish exponent spread, slightly off-center so no coordinate
// difference vanishes (the generic, not the special-case, code path).
chem::Shell make_shell(int l, chem::Vec3 center) {
  return chem::Shell(l, 0, center, {2.9, 0.81, 0.23}, {0.35, 0.55, 0.25});
}

// Deterministic per-replica center jitter: replicas share the pair's
// structural skeleton (same L, same primitive count) but carry distinct
// geometry, so SIMD lanes hold genuinely different values.
chem::Vec3 jitter(chem::Vec3 c, int i) {
  return {c.x + 0.17 * i, c.y - 0.11 * i, c.z + 0.23 * i};
}

struct LClass {
  const char* name;
  int la, lb, lc, ld;
};

constexpr LClass kClasses[] = {
    {"(ss|ss)", 0, 0, 0, 0}, {"(sp|sp)", 0, 1, 0, 1},
    {"(pp|pp)", 1, 1, 1, 1}, {"(dp|dp)", 2, 1, 2, 1},
    {"(dd|dd)", 2, 2, 2, 2},
};

// Per-class workload: kReplicas bra pairs x kReplicas ket pairs (all
// structurally identical, geometrically jittered) -> a stream of
// kReplicas^2 quartets that the batched kernel packs 8 wide.
struct ClassWorkload {
  static constexpr int kReplicas = 8;

  std::vector<ShellPairHermite> bras, kets;
  std::vector<ShellPairHermite> dense_bras, dense_kets;
  std::vector<ints::QuartetRef> stream;

  explicit ClassWorkload(const LClass& cls) {
    bras.reserve(kReplicas);
    kets.reserve(kReplicas);
    dense_bras.reserve(kReplicas);
    dense_kets.reserve(kReplicas);
    for (int i = 0; i < kReplicas; ++i) {
      const auto a = make_shell(cls.la, jitter({0.0, 0.0, 0.0}, i));
      const auto b = make_shell(cls.lb, jitter({0.3, -0.2, 0.9}, i));
      const auto c = make_shell(cls.lc, jitter({1.1, 0.7, -0.4}, i));
      const auto d = make_shell(cls.ld, jitter({-0.5, 1.3, 0.6}, i));
      bras.emplace_back(a, b, EriKernel::kBatched);
      kets.emplace_back(c, d, EriKernel::kBatched);
      dense_bras.emplace_back(a, b, EriKernel::kDenseReference);
      dense_kets.emplace_back(c, d, EriKernel::kDenseReference);
    }
    for (int i = 0; i < kReplicas; ++i)
      for (int j = 0; j < kReplicas; ++j)
        stream.push_back({&bras[i], &kets[j]});
  }
};

double seconds_for(const std::function<void()>& fn, int iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double max_abs_diff(const ints::EriBlock& a, const ints::EriBlock& b) {
  double mx = 0.0;
  for (std::size_t i = 0; i < a.values.size(); ++i)
    mx = std::max(mx, std::abs(a.values[i] - b.values[i]));
  return mx;
}

// Cross-check a batched stream against both scalar kernels; returns the
// worst element difference across all quartets and both oracles.
double stream_agreement(const ClassWorkload& w,
                        const std::vector<ints::EriBlock>& batched) {
  double diff = 0.0;
  ints::EriBlock ref;
  for (std::size_t q = 0; q < w.stream.size(); ++q) {
    ints::eri_shell_quartet(*w.stream[q].bra, *w.stream[q].ket, ref);
    diff = std::max(diff, max_abs_diff(batched[q], ref));
    const std::size_t i = q / ClassWorkload::kReplicas;
    const std::size_t j = q % ClassWorkload::kReplicas;
    ints::eri_shell_quartet_dense_reference(w.dense_bras[i], w.dense_kets[j],
                                            ref);
    diff = std::max(diff, max_abs_diff(batched[q], ref));
  }
  return diff;
}

obs::Json make_row(const char* name, double quartets, double qps_b,
                   double qps_s, double qps_d, double diff) {
  std::printf("%-10s %-9.0f %-13.3e %-13.3e %-13.3e %-8.2f %-8.2f %-10.2e\n",
              name, quartets, qps_b, qps_s, qps_d, qps_b / qps_s,
              qps_s / qps_d, diff);
  obs::Json row = obs::Json::object();
  row["class"] = name;
  row["quartets"] = quartets;
  row["batched_quartets_per_second"] = qps_b;
  row["sparse_quartets_per_second"] = qps_s;
  row["dense_quartets_per_second"] = qps_d;
  row["batched_speedup_vs_sparse"] = qps_b / qps_s;
  row["speedup"] = qps_s / qps_d;  // historical sparse-vs-dense column
  row["max_abs_diff"] = diff;
  return row;
}

void print_table_header(const char* title) {
  bench::print_header(title);
  std::printf("%-10s %-9s %-13s %-13s %-13s %-8s %-8s %-10s\n", "class",
              "quartets", "batched q/s", "sparse q/s", "dense q/s", "b/s",
              "s/d", "max|diff|");
  bench::print_rule();
}

obs::Json throughput_table(bool smoke, bool* agreement_ok) {
  print_table_header(
      "A7: ERI quartet throughput, batched SIMD vs. scalar sparse vs. dense "
      "reference (same pair data)");

  obs::Json rows = obs::Json::array();
  const int sweeps = smoke ? 5 : 400;
  for (const LClass& cls : kClasses) {
    ClassWorkload w(cls);
    const std::size_t n = w.stream.size();
    std::vector<ints::EriBlock> batched(n);
    ints::eri_shell_quartet_batched({w.stream.data(), n}, batched.data());
    const double diff = stream_agreement(w, batched);
    if (diff > 1e-12) *agreement_ok = false;

    ints::EriBlock block;
    const double tb = seconds_for(
        [&] {
          ints::eri_shell_quartet_batched({w.stream.data(), n},
                                          batched.data());
        },
        sweeps);
    const double ts = seconds_for(
        [&] {
          for (const auto& q : w.stream)
            ints::eri_shell_quartet(*q.bra, *q.ket, block);
        },
        sweeps);
    const double td = seconds_for(
        [&] {
          for (std::size_t i = 0; i < w.dense_bras.size(); ++i)
            for (std::size_t j = 0; j < w.dense_kets.size(); ++j)
              ints::eri_shell_quartet_dense_reference(w.dense_bras[i],
                                                      w.dense_kets[j], block);
        },
        sweeps);
    const double total = static_cast<double>(n * sweeps);
    rows.push_back(make_row(cls.name, total, total / tb, total / ts,
                            total / td, diff));
  }
  return rows;
}

// Mixed s/p/d workload: four jittered copies each of an s, a p and a d
// shell — the shape of a real heavy-atom polarization basis row, with
// the shell multiplicity that gives the batch former same-structure
// runs to pack (12 shells -> 78 pairs -> 3081 bra>=ket quartets).
obs::Json mixed_workload(bool smoke, bool* agreement_ok) {
  std::vector<chem::Shell> shells;
  for (int i = 0; i < 4; ++i) {
    shells.push_back(make_shell(0, jitter({0.0, 0.0, 0.0}, i)));
    shells.push_back(make_shell(1, jitter({0.4, -0.3, 0.8}, i)));
    shells.push_back(make_shell(2, jitter({-0.7, 0.9, 0.2}, i)));
  }
  std::vector<ShellPairHermite> pairs, dense;
  for (std::size_t a = 0; a < shells.size(); ++a)
    for (std::size_t b = 0; b <= a; ++b) {
      pairs.emplace_back(shells[a], shells[b], EriKernel::kBatched);
      dense.emplace_back(shells[a], shells[b], EriKernel::kDenseReference);
    }
  std::vector<ints::QuartetRef> stream;
  std::vector<std::size_t> bra_of, ket_of;
  for (std::size_t bra = 0; bra < pairs.size(); ++bra)
    for (std::size_t ket = 0; ket <= bra; ++ket) {
      stream.push_back({&pairs[bra], &pairs[ket]});
      bra_of.push_back(bra);
      ket_of.push_back(ket);
    }

  const std::size_t n = stream.size();
  std::vector<ints::EriBlock> batched(n);
  ints::eri_shell_quartet_batched({stream.data(), n}, batched.data());
  double diff = 0.0;
  ints::EriBlock ref;
  for (std::size_t q = 0; q < n; ++q) {
    ints::eri_shell_quartet(*stream[q].bra, *stream[q].ket, ref);
    diff = std::max(diff, max_abs_diff(batched[q], ref));
    ints::eri_shell_quartet_dense_reference(dense[bra_of[q]], dense[ket_of[q]],
                                            ref);
    diff = std::max(diff, max_abs_diff(batched[q], ref));
  }
  if (diff > 1e-12) *agreement_ok = false;

  const int sweeps = smoke ? 3 : 60;
  ints::EriBlock block;
  const double tb = seconds_for(
      [&] { ints::eri_shell_quartet_batched({stream.data(), n},
                                            batched.data()); },
      sweeps);
  const double ts = seconds_for(
      [&] {
        for (const auto& q : stream)
          ints::eri_shell_quartet(*q.bra, *q.ket, block);
      },
      sweeps);
  const double td = seconds_for(
      [&] {
        for (std::size_t q = 0; q < n; ++q)
          ints::eri_shell_quartet_dense_reference(dense[bra_of[q]],
                                                  dense[ket_of[q]], block);
      },
      sweeps);
  const double total = static_cast<double>(n * sweeps);
  obs::Json row = make_row("mixed", total, total / tb, total / ts, total / td,
                           diff);
  row["class"] = "mixed s/p/d";
  return row;
}

// Reduce-phase scaling: hfx.reduce_seconds at 1 vs 8 threads for the
// same build. The row-blocked tree makes this flat-to-shrinking in
// thread count; the old serial sum grew linearly with it.
obs::Json reduce_scaling(bool smoke) {
  bench::print_header(
      "A7: K-accumulator reduction, hfx.reduce_seconds by thread count");
  const auto unit = workload::propylene_carbonate();
  const auto mol = smoke ? unit : workload::cluster_of(unit, 2, 9.0);
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  const auto s = ints::overlap(basis);
  const auto x = linalg::inverse_sqrt(s);
  const auto p = scf::core_guess_density(basis, mol, x);

  std::printf("%-10s %-16s %-16s\n", "threads", "reduce/s", "build wall/s");
  bench::print_rule();
  obs::Json rows = obs::Json::array();
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    hfx::HfxOptions opts;
    opts.eps_schwarz = 1e-8;
    opts.num_threads = threads;
    hfx::FockBuilder builder(basis, opts);
    auto r = builder.exchange(p);
    std::printf("%-10zu %-16.3e %-16.3e\n", threads, r.stats.reduce_seconds,
                r.stats.wall_seconds);
    obs::Json row = obs::Json::object();
    row["threads"] = threads;
    row["reduce_seconds"] = r.stats.reduce_seconds;
    row["wall_seconds"] = r.stats.wall_seconds;
    rows.push_back(std::move(row));
  }
  return rows;
}

// google-benchmark timing loops for the three kernels, for perf-tracking
// runs. The batched loop times a full-width 64-quartet stream and
// reports per-quartet time via items processed.
void BM_BatchedKernel(benchmark::State& state) {
  ClassWorkload w(kClasses[state.range(0)]);
  std::vector<ints::EriBlock> out(w.stream.size());
  for (auto _ : state) {
    ints::eri_shell_quartet_batched({w.stream.data(), w.stream.size()},
                                    out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.stream.size()));
}
BENCHMARK(BM_BatchedKernel)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_SparseKernel(benchmark::State& state) {
  ClassWorkload w(kClasses[state.range(0)]);
  ints::EriBlock block;
  for (auto _ : state) {
    for (const auto& q : w.stream)
      ints::eri_shell_quartet(*q.bra, *q.ket, block);
    benchmark::DoNotOptimize(block.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.stream.size()));
}
BENCHMARK(BM_SparseKernel)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_DenseReferenceKernel(benchmark::State& state) {
  ClassWorkload w(kClasses[state.range(0)]);
  ints::EriBlock block;
  for (auto _ : state) {
    for (std::size_t i = 0; i < w.dense_bras.size(); ++i)
      for (std::size_t j = 0; j < w.dense_kets.size(); ++j)
        ints::eri_shell_quartet_dense_reference(w.dense_bras[i],
                                                w.dense_kets[j], block);
    benchmark::DoNotOptimize(block.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.stream.size()));
}
BENCHMARK(BM_DenseReferenceKernel)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  bool agreement_ok = true;
  obs::Json record = obs::Json::object();
  record["bench"] = "hfx_kernel";
  record["throughput_by_class"] = throughput_table(smoke, &agreement_ok);
  record["mixed_workload"] = mixed_workload(smoke, &agreement_ok);
  record["reduce_scaling"] = reduce_scaling(smoke);
  if (!smoke) bench::write_bench_json("hfx_kernel", record);

  if (!agreement_ok) {
    std::fprintf(
        stderr,
        "A7: kernel variants disagree (batched/sparse/dense > 1e-12)\n");
    return 1;
  }
  if (smoke) {
    std::printf("A7 smoke: kernel variants agree on every class.\n");
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
