// A7 — ERI kernel microbenchmark: quartet throughput by L-class for the
// sparse Hermite kernel (compacted E-lists + ket-side contraction
// intermediates) against the pre-optimization dense reference kernel,
// on the same precomputed pair data. The kernel variant is selected by
// the EriKernel flag on ShellPairHermite, so "before" and "after" run
// from identical inputs and are cross-checked element by element.
//
// Also records the reduce-phase scaling (hfx.reduce_seconds at 1 vs 8
// threads) for the row-blocked tree reduction.
//
// `--smoke` runs the table with small iteration counts and exits nonzero
// on any sparse-vs-dense disagreement — the counts-only CI invocation in
// scripts/run_tests.sh. Without it, the table runs at full iteration
// counts, emits BENCH_hfx_kernel.json, and then hands off to
// google-benchmark for the registered timing loops.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ints/eri.hpp"

namespace {

using namespace mthfx;
using ints::EriKernel;
using ints::ShellPairHermite;

// A small synthetic shell of the given angular momentum: 3 primitives
// with TZ-ish exponent spread, slightly off-center so no coordinate
// difference vanishes (the generic, not the special-case, code path).
chem::Shell make_shell(int l, chem::Vec3 center) {
  return chem::Shell(l, 0, center, {2.9, 0.81, 0.23}, {0.35, 0.55, 0.25});
}

struct LClass {
  const char* name;
  int la, lb, lc, ld;
};

constexpr LClass kClasses[] = {
    {"(ss|ss)", 0, 0, 0, 0}, {"(sp|sp)", 0, 1, 0, 1},
    {"(pp|pp)", 1, 1, 1, 1}, {"(dp|dp)", 2, 1, 2, 1},
    {"(dd|dd)", 2, 2, 2, 2},
};

struct QuartetSetup {
  ShellPairHermite sparse_bra, sparse_ket;
  ShellPairHermite dense_bra, dense_ket;

  QuartetSetup(const LClass& cls)
      : sparse_bra(make_shell(cls.la, {0.0, 0.0, 0.0}),
                   make_shell(cls.lb, {0.3, -0.2, 0.9})),
        sparse_ket(make_shell(cls.lc, {1.1, 0.7, -0.4}),
                   make_shell(cls.ld, {-0.5, 1.3, 0.6})),
        dense_bra(make_shell(cls.la, {0.0, 0.0, 0.0}),
                  make_shell(cls.lb, {0.3, -0.2, 0.9}),
                  EriKernel::kDenseReference),
        dense_ket(make_shell(cls.lc, {1.1, 0.7, -0.4}),
                  make_shell(cls.ld, {-0.5, 1.3, 0.6}),
                  EriKernel::kDenseReference) {}
};

double seconds_for(const std::function<void()>& fn, int iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double max_abs_diff(const ints::EriBlock& a, const ints::EriBlock& b) {
  double mx = 0.0;
  for (std::size_t i = 0; i < a.values.size(); ++i)
    mx = std::max(mx, std::abs(a.values[i] - b.values[i]));
  return mx;
}

// Mixed s/p/d workload: all quartets over one s, one p and one d shell
// pair-set — the shape of a real heavy-atom polarization basis row.
std::vector<chem::Shell> mixed_shells() {
  return {make_shell(0, {0.0, 0.0, 0.0}), make_shell(1, {0.4, -0.3, 0.8}),
          make_shell(2, {-0.7, 0.9, 0.2})};
}

obs::Json throughput_table(bool smoke, bool* agreement_ok) {
  bench::print_header(
      "A7: ERI quartet throughput, sparse kernel vs. dense reference "
      "(same pair data)");
  std::printf("%-10s %-10s %-14s %-14s %-9s %-12s\n", "class", "quartets",
              "sparse q/s", "dense q/s", "speedup", "max|diff|");
  bench::print_rule();

  obs::Json rows = obs::Json::array();
  const int iters = smoke ? 40 : 2000;
  for (const LClass& cls : kClasses) {
    QuartetSetup s(cls);
    ints::EriBlock sparse_block, dense_block;
    ints::eri_shell_quartet(s.sparse_bra, s.sparse_ket, sparse_block);
    ints::eri_shell_quartet_dense_reference(s.dense_bra, s.dense_ket,
                                            dense_block);
    const double diff = max_abs_diff(sparse_block, dense_block);
    if (diff > 1e-12) *agreement_ok = false;

    const double ts = seconds_for(
        [&] { ints::eri_shell_quartet(s.sparse_bra, s.sparse_ket, sparse_block); },
        iters);
    const double td = seconds_for(
        [&] {
          ints::eri_shell_quartet_dense_reference(s.dense_bra, s.dense_ket,
                                                  dense_block);
        },
        iters);
    const double qps_s = iters / ts;
    const double qps_d = iters / td;
    std::printf("%-10s %-10d %-14.3e %-14.3e %-9.2f %-12.2e\n", cls.name,
                iters, qps_s, qps_d, qps_s / qps_d, diff);
    obs::Json row = obs::Json::object();
    row["class"] = cls.name;
    row["quartets"] = iters;
    row["sparse_quartets_per_second"] = qps_s;
    row["dense_quartets_per_second"] = qps_d;
    row["speedup"] = qps_s / qps_d;
    row["max_abs_diff"] = diff;
    rows.push_back(std::move(row));
  }
  return rows;
}

obs::Json mixed_workload(bool smoke, bool* agreement_ok) {
  const auto shells = mixed_shells();
  std::vector<ShellPairHermite> sparse, dense;
  for (std::size_t a = 0; a < shells.size(); ++a)
    for (std::size_t b = 0; b <= a; ++b) {
      sparse.emplace_back(shells[a], shells[b]);
      dense.emplace_back(shells[a], shells[b], EriKernel::kDenseReference);
    }

  ints::EriBlock block_s, block_d;
  double diff = 0.0;
  for (std::size_t bra = 0; bra < sparse.size(); ++bra)
    for (std::size_t ket = 0; ket <= bra; ++ket) {
      ints::eri_shell_quartet(sparse[bra], sparse[ket], block_s);
      ints::eri_shell_quartet_dense_reference(dense[bra], dense[ket], block_d);
      diff = std::max(diff, max_abs_diff(block_s, block_d));
    }
  if (diff > 1e-12) *agreement_ok = false;

  const std::size_t quartets_per_sweep = sparse.size() * (sparse.size() + 1) / 2;
  const int sweeps = smoke ? 5 : 300;
  const double ts = seconds_for(
      [&] {
        for (std::size_t bra = 0; bra < sparse.size(); ++bra)
          for (std::size_t ket = 0; ket <= bra; ++ket)
            ints::eri_shell_quartet(sparse[bra], sparse[ket], block_s);
      },
      sweeps);
  const double td = seconds_for(
      [&] {
        for (std::size_t bra = 0; bra < dense.size(); ++bra)
          for (std::size_t ket = 0; ket <= bra; ++ket)
            ints::eri_shell_quartet_dense_reference(dense[bra], dense[ket],
                                                    block_d);
      },
      sweeps);
  const double total = static_cast<double>(quartets_per_sweep * sweeps);
  const double qps_s = total / ts;
  const double qps_d = total / td;
  std::printf("%-10s %-10.0f %-14.3e %-14.3e %-9.2f %-12.2e\n", "mixed", total,
              qps_s, qps_d, qps_s / qps_d, diff);
  obs::Json row = obs::Json::object();
  row["class"] = "mixed s/p/d";
  row["quartets"] = total;
  row["sparse_quartets_per_second"] = qps_s;
  row["dense_quartets_per_second"] = qps_d;
  row["speedup"] = qps_s / qps_d;
  row["max_abs_diff"] = diff;
  return row;
}

// Reduce-phase scaling: hfx.reduce_seconds at 1 vs 8 threads for the
// same build. The row-blocked tree makes this flat-to-shrinking in
// thread count; the old serial sum grew linearly with it.
obs::Json reduce_scaling(bool smoke) {
  bench::print_header(
      "A7: K-accumulator reduction, hfx.reduce_seconds by thread count");
  const auto unit = workload::propylene_carbonate();
  const auto mol = smoke ? unit : workload::cluster_of(unit, 2, 9.0);
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  const auto s = ints::overlap(basis);
  const auto x = linalg::inverse_sqrt(s);
  const auto p = scf::core_guess_density(basis, mol, x);

  std::printf("%-10s %-16s %-16s\n", "threads", "reduce/s", "build wall/s");
  bench::print_rule();
  obs::Json rows = obs::Json::array();
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    hfx::HfxOptions opts;
    opts.eps_schwarz = 1e-8;
    opts.num_threads = threads;
    hfx::FockBuilder builder(basis, opts);
    auto r = builder.exchange(p);
    std::printf("%-10zu %-16.3e %-16.3e\n", threads, r.stats.reduce_seconds,
                r.stats.wall_seconds);
    obs::Json row = obs::Json::object();
    row["threads"] = threads;
    row["reduce_seconds"] = r.stats.reduce_seconds;
    row["wall_seconds"] = r.stats.wall_seconds;
    rows.push_back(std::move(row));
  }
  return rows;
}

// google-benchmark timing loops for the two kernels on the heaviest
// class, for perf-tracking runs.
void BM_SparseKernel(benchmark::State& state) {
  QuartetSetup s(kClasses[state.range(0)]);
  ints::EriBlock block;
  for (auto _ : state) {
    ints::eri_shell_quartet(s.sparse_bra, s.sparse_ket, block);
    benchmark::DoNotOptimize(block.values.data());
  }
}
BENCHMARK(BM_SparseKernel)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_DenseReferenceKernel(benchmark::State& state) {
  QuartetSetup s(kClasses[state.range(0)]);
  ints::EriBlock block;
  for (auto _ : state) {
    ints::eri_shell_quartet_dense_reference(s.dense_bra, s.dense_ket, block);
    benchmark::DoNotOptimize(block.values.data());
  }
}
BENCHMARK(BM_DenseReferenceKernel)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  bool agreement_ok = true;
  obs::Json record = obs::Json::object();
  record["bench"] = "hfx_kernel";
  record["throughput_by_class"] = throughput_table(smoke, &agreement_ok);
  record["mixed_workload"] = mixed_workload(smoke, &agreement_ok);
  record["reduce_scaling"] = reduce_scaling(smoke);
  if (!smoke) bench::write_bench_json("hfx_kernel", record);

  if (!agreement_ok) {
    std::fprintf(stderr,
                 "A7: sparse kernel disagrees with dense reference (> 1e-12)\n");
    return 1;
  }
  if (smoke) {
    std::printf("A7 smoke: kernel variants agree on every class.\n");
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
