// E5 — hybrid-functional molecular dynamics: the paper uses its fast HFX
// to run PBE0-quality BOMD. We run short NVE trajectories of H2 on the
// PBE and PBE0 surfaces, reporting energy conservation and the per-step
// cost premium of the hybrid (the quantity the paper's kernel shrinks).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hpp"
#include "md/integrator.hpp"

namespace {

using namespace mthfx;

void pbe0_md_table() {
  bench::print_header("E5: BOMD on PBE vs. PBE0 surfaces (H2, STO-3G, NVE)");
  std::printf("%-12s %-14s %-16s %-16s %-14s\n", "functional", "steps",
              "E(t=0)/Ha", "max drift/Ha", "s per step");
  bench::print_rule();

  for (const char* functional : {"pbe", "pbe0", "hf"}) {
    scf::KsOptions ks;
    ks.functional = functional;
    ks.grid.radial_points = 30;
    ks.grid.angular_points = 26;
    md::ScfPotential pot("sto-3g", ks);

    chem::Molecule m;
    m.add_atom(1, {0, 0, 0});
    m.add_atom(1, {0, 0, 1.55});

    md::MdOptions opts;
    opts.timestep_fs = 0.15;
    opts.num_steps = 10;

    const auto t0 = std::chrono::steady_clock::now();
    const auto result = md::run_bomd(m, pot, opts);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();

    std::printf("%-12s %-14d %-16.6f %-16.3e %-14.3f\n", functional,
                opts.num_steps, result.frames.front().total,
                result.max_energy_drift(),
                secs / static_cast<double>(opts.num_steps));
  }
  std::printf(
      "\npaper claim: PBE0 dynamics become affordable once the HFX build "
      "scales; energy conservation certifies the forces.\n");
}

void BM_Pbe0EnergyPoint(benchmark::State& state) {
  scf::KsOptions ks;
  ks.functional = "pbe0";
  ks.grid.radial_points = 30;
  ks.grid.angular_points = 26;
  md::ScfPotential pot("sto-3g", ks);
  const auto m = workload::h2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pot.energy(m));
  }
}
BENCHMARK(BM_Pbe0EnergyPoint)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pbe0_md_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
