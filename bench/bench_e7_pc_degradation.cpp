// E7 — the degradation mechanism: lithium-peroxide attack on propylene
// carbonate, the reaction the paper's MD simulations expose. We scan a
// rigid approach path of the peroxide toward the PC carbonyl carbon and
// report the RHF/STO-3G energy profile (relative to the separated limit).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "chem/elements.hpp"
#include "scf/rhf.hpp"
#include "workload/reaction_path.hpp"

namespace {

using namespace mthfx;

scf::ScfOptions fast_scf() {
  scf::ScfOptions o;
  o.hfx.eps_schwarz = 1e-9;
  o.energy_tolerance = 1e-8;
  o.diis_tolerance = 1e-5;
  o.max_iterations = 200;
  return o;
}

void degradation_profile() {
  bench::print_header(
      "E7: Li2O2 approach onto the PC carbonyl (RHF/STO-3G energy profile)");
  const auto pc = workload::propylene_carbonate();
  const auto li2o2 = workload::lithium_peroxide();

  // Approach along +y above the carbonyl carbon (PC atom 0 at y=1.19 A).
  const chem::Vec3 far{0.0, 9.0 * chem::kBohrPerAngstrom, 0.0};
  const chem::Vec3 near{0.0, 5.0 * chem::kBohrPerAngstrom, 0.0};
  const auto path = workload::approach_path(pc, li2o2, far, near, 7);

  std::printf("%-10s %-16s %-18s %-22s\n", "image", "d(C..O2)/A",
              "E/Ha", "dE vs far/kcal/mol");
  bench::print_rule();
  double e_far = 0.0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const auto& mol = path[i];
    const auto basis = chem::BasisSet::build(mol, "sto-3g");
    const auto r = scf::rhf(mol, basis, fast_scf());
    if (i == 0) e_far = r.energy;
    // Distance carbonyl carbon (atom 0) to nearest peroxide oxygen.
    const std::size_t o1 = pc.size();
    const double d = std::min(
        chem::distance(mol.atom(0).pos, mol.atom(o1).pos),
        chem::distance(mol.atom(0).pos, mol.atom(o1 + 1).pos));
    std::printf("%-10zu %-16.3f %-18.6f %-22.2f%s\n", i,
                d * chem::kAngstromPerBohr, r.energy,
                (r.energy - e_far) * chem::kKcalPerMolPerHartree,
                r.converged ? "" : "  [unconverged]");
  }
  std::printf(
      "\na barrierless, increasingly attractive approach into a deep "
      "complex reproduces the paper's finding that the peroxide readily "
      "engages PC (bond-breaking chemistry past the well needs the MD).\n");
}

void BM_PathImageScf(benchmark::State& state) {
  const auto pc = workload::propylene_carbonate();
  const auto li2o2 = workload::lithium_peroxide();
  const chem::Vec3 off{0.0, 6.0 * chem::kBohrPerAngstrom, 0.0};
  chem::Molecule mol = pc;
  chem::Molecule adduct = li2o2;
  adduct.translate(off);
  mol.append(adduct);
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  for (auto _ : state) {
    auto r = scf::rhf(mol, basis, fast_scf());
    benchmark::DoNotOptimize(r.energy);
  }
}
BENCHMARK(BM_PathImageScf)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  degradation_profile();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
