// A1 — ablation of the scheduling policy (DESIGN.md design choice #1):
// how much does the dynamic task bag buy over static distributions as the
// task-cost variance grows? Synthetic task sets isolate the scheduler
// from the integral kernel; the same sweep is run on the host executor
// and on the machine simulator.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <queue>
#include <random>
#include <thread>

#include "bench_common.hpp"
#include "hfx/schedulers.hpp"
#include "obs/registry.hpp"
#include "obs/stopwatch.hpp"

namespace {

using namespace mthfx;

// Log-normal-ish synthetic costs with controlled spread.
std::vector<double> synthetic_costs(std::size_t n, double spread,
                                    unsigned seed) {
  std::mt19937 rng(seed);
  std::lognormal_distribution<double> dist(0.0, spread);
  std::vector<double> c(n);
  for (double& v : c) v = 20e-6 * dist(rng);  // ~20 us mean scale
  return c;
}

void spin_for(double seconds) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() < seconds) {
  }
}

const char* schedule_name(hfx::HfxSchedule sched) {
  switch (sched) {
    case hfx::HfxSchedule::kDynamicBag: return "dynamic_bag";
    case hfx::HfxSchedule::kStaticBlock: return "static_block";
    case hfx::HfxSchedule::kStaticCyclic: return "static_cyclic";
    case hfx::HfxSchedule::kWorkStealing: return "work_stealing";
  }
  return "unknown";
}

obs::Json host_ablation_table() {
  bench::print_header(
      "A1a: host executor, makespan vs. task-cost spread (4 threads, 2000 "
      "tasks)");
  if (std::thread::hardware_concurrency() <= 1)
    std::printf(
        "[note] single-core host: thread schedulers serialize here; the "
        "machine simulation below carries the comparison.\n");
  std::printf("%-10s %-14s %-14s %-14s %-14s\n", "spread", "dynamic/s",
              "static/s", "cyclic/s", "stealing/s");
  bench::print_rule();
  obs::Json rows = obs::Json::array();
  for (double spread : {0.0, 0.5, 1.0, 2.0}) {
    const auto costs = synthetic_costs(2000, spread, 99);
    std::printf("%-10.1f", spread);
    obs::Json row = obs::Json::object();
    row["spread"] = spread;
    for (auto sched :
         {hfx::HfxSchedule::kDynamicBag, hfx::HfxSchedule::kStaticBlock,
          hfx::HfxSchedule::kStaticCyclic, hfx::HfxSchedule::kWorkStealing}) {
      obs::Registry registry(4);
      obs::Stopwatch watch;
      hfx::execute_tasks(costs.size(), 4, sched,
                         [&](std::size_t i, std::size_t) {
                           spin_for(costs[i]);
                         },
                         &registry);
      const double secs = watch.seconds();
      std::printf(" %-13.4f", secs);
      obs::Json cell = obs::Json::object();
      cell["seconds"] = secs;
      cell["metrics"] = registry.to_json();
      row[schedule_name(sched)] = std::move(cell);
    }
    rows.push_back(std::move(row));
    std::printf("\n");
  }
  return rows;
}

// Real quartet-task costs are not i.i.d. along the task list: heavy
// shell classes (pp|pp-type blocks) arrive in long runs. A cost-blind
// static distribution inherits that correlation as per-thread imbalance,
// while the dynamic bag is immune. Modeled with a two-state Markov cost
// sequence (persistence rho), executed exactly at node granularity.
obs::Json machine_ablation_table() {
  bench::print_header(
      "A1b: scheduling under correlated task costs (96 racks, 20M tasks, "
      "reduction excluded)");
  std::printf("%-14s %-16s %-16s %-8s\n", "persistence", "dynamic/s",
              "static-block/s", "ratio");
  bench::print_rule();
  obs::Json rows = obs::Json::array();

  const auto machine = bgq::machine_for_racks(96);
  const std::int64_t nodes = machine.num_nodes();
  const std::int64_t num_tasks = 20'000'000;
  const double light = 10e-6, heavy = 200e-6;  // 20x cost classes
  const double node_rate = 64.0;

  for (double rho : {0.0, 0.9, 0.999, 0.99999}) {
    std::mt19937 rng(1234);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    // Chunk the task list (16 tasks/chunk) exactly as both schemes see it.
    const std::int64_t chunk = 16;
    const std::int64_t num_chunks = num_tasks / chunk;
    std::vector<double> chunk_cost(static_cast<std::size_t>(num_chunks));
    bool in_heavy = false;
    for (auto& cc : chunk_cost) {
      double sum = 0.0;
      for (int t = 0; t < chunk; ++t) {
        if (u(rng) > rho) in_heavy = (u(rng) < 0.1);  // 10% heavy overall
        sum += in_heavy ? heavy : light;
      }
      cc = sum;
    }

    // Static contiguous-block partition over nodes (each node owns one
    // slice of the quartet list, the classic cost-blind decomposition).
    std::vector<double> load(static_cast<std::size_t>(nodes), 0.0);
    const std::int64_t per_node = (num_chunks + nodes - 1) / nodes;
    for (std::int64_t c = 0; c < num_chunks; ++c)
      load[static_cast<std::size_t>(std::min(c / per_node, nodes - 1))] +=
          chunk_cost[static_cast<std::size_t>(c)];
    double stat_max = 0.0;
    for (double l : load) stat_max = std::max(stat_max, l);
    const double stat_time = stat_max / node_rate;

    // Dynamic bag: greedy earliest-available node.
    std::priority_queue<double, std::vector<double>, std::greater<>> heap;
    for (std::int64_t n = 0; n < nodes; ++n) heap.push(0.0);
    double dyn_time = 0.0;
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      const double start = heap.top();
      heap.pop();
      const double finish =
          start + chunk_cost[static_cast<std::size_t>(c)] / node_rate;
      heap.push(finish);
      dyn_time = std::max(dyn_time, finish);
    }

    std::printf("%-14.5f %-16.4f %-16.4f %-8.2f\n", rho, dyn_time, stat_time,
                stat_time / dyn_time);
    obs::Json row = obs::Json::object();
    row["persistence"] = rho;
    row["dynamic_seconds"] = dyn_time;
    row["static_block_seconds"] = stat_time;
    row["ratio"] = stat_time / dyn_time;
    rows.push_back(std::move(row));
  }
  std::printf(
      "\nuncorrelated costs average out even statically; the long heavy "
      "runs of real quartet lists are what the dynamic bag absorbs.\n");
  return rows;
}

void BM_ExecuteTasksOverhead(benchmark::State& state) {
  // Pure scheduling overhead: empty task bodies.
  const auto sched = static_cast<hfx::HfxSchedule>(state.range(0));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    hfx::execute_tasks(10000, 4, sched, [&](std::size_t i, std::size_t) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ExecuteTasksOverhead)
    ->Arg(static_cast<int>(mthfx::hfx::HfxSchedule::kDynamicBag))
    ->Arg(static_cast<int>(mthfx::hfx::HfxSchedule::kWorkStealing))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  obs::Json record = obs::Json::object();
  record["bench"] = "a1_scheduler_ablation";
  record["host_ablation"] = host_ablation_table();
  record["machine_ablation"] = machine_ablation_table();
  bench::write_bench_json("a1_scheduler_ablation", record);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
