// A2 — ablation of the screening stages (DESIGN.md design choice #2):
// quartet counts and wall time with (a) no screening, (b) Schwarz only,
// (c) Schwarz + density screening, across system sizes. Run on the real
// kernel.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mthfx;

void screening_cost_table() {
  bench::print_header(
      "A2: screening-stage ablation on water clusters (STO-3G, eps=1e-8)");
  std::printf("%-10s %-6s %-22s %-22s %-22s\n", "waters", "nao",
              "none: quartets/time", "schwarz: quartets/time",
              "+density: quartets/time");
  bench::print_rule();

  for (int waters : {2, 4, 8}) {
    const auto cluster = workload::cluster_of(workload::water(), waters, 8.0);
    const auto basis = chem::BasisSet::build(cluster, "sto-3g");
    const auto s = ints::overlap(basis);
    const auto x = linalg::inverse_sqrt(s);
    const auto p = scf::core_guess_density(basis, cluster, x);

    auto run = [&](double eps, bool density) {
      hfx::HfxOptions opts;
      opts.eps_schwarz = eps;
      opts.density_screening = density;
      const auto r = hfx::FockBuilder(basis, opts).exchange(p);
      return std::make_pair(r.stats.screening.quartets_computed,
                            r.stats.wall_seconds);
    };

    const auto none = run(1e-30, false);
    const auto schwarz = run(1e-8, false);
    const auto density = run(1e-8, true);
    std::printf("%-10d %-6zu %10llu/%-10.4f %10llu/%-10.4f %10llu/%-10.4f\n",
                waters, basis.num_functions(),
                static_cast<unsigned long long>(none.first), none.second,
                static_cast<unsigned long long>(schwarz.first),
                schwarz.second,
                static_cast<unsigned long long>(density.first),
                density.second);
  }
  std::printf(
      "\nscreening work grows sub-quadratically with system size — the "
      "property that keeps the task bag tractable at condensed-phase "
      "scale.\n");
}

void BM_SchwarzBoundsTable(benchmark::State& state) {
  const auto cluster = workload::cluster_of(
      workload::water(), static_cast<int>(state.range(0)), 8.0);
  const auto basis = chem::BasisSet::build(cluster, "sto-3g");
  for (auto _ : state) {
    auto q = ints::schwarz_bounds(basis);
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_SchwarzBoundsTable)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  screening_cost_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
