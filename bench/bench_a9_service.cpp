// A9 — sustained-campaign scale benchmark for the screening service
// (src/serve): a mixed 10k-job campaign driven by concurrent client
// threads over the real TCP line protocol, with one SIGKILL + --resume
// restart in the middle of the run.
//
// Three things are measured:
//
//   campaign — N client threads pipeline a window of submits per
//     connection against a live server in a separate process; the
//     parent SIGKILLs that process after ~30% of the results have
//     arrived and restarts it on the same port with resume enabled.
//     Clients reconnect and keep collecting. Reported: client-observed
//     submit-to-result latency percentiles (p50/p90/p99, crash window
//     included — that spike is the recovery cost, not noise), cache
//     hit-rate from the duplicate share of the mix, per-tenant
//     completion/reject/shed accounting, journal-replayed jobs after
//     the restart, and jobs/hour.
//
//   bit-identity — a sample of served records is re-run through
//     app::run_structured() on the record's own executed input; the
//     energies must match to the last bit (the service adds transport
//     and scheduling, never physics).
//
//   fair-share — a saturated two-tenant segment with 2:1 weights; the
//     per-tenant completion ratio at mid-campaign must sit within 20%
//     of the weight ratio (the same invariant tests/test_serve.cpp
//     pins).
//
// Process architecture: the server generations are forked by a
// single-threaded supervisor child created before the parent spawns any
// client threads — fork() from a threaded process may inherit a lock
// mid-flight, so the only thing the threaded parent ever does is write
// one-word commands down a pipe. The SIGKILL is a real kill(2) of a
// real process; recovery is the journal replay path, not a simulation.
//
// --smoke shrinks the campaign (~120 jobs) for the tier-1 gate; the
// full campaign is the acceptance run and writes BENCH_service.json.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "workload/geometries.hpp"

namespace {

using namespace mthfx;

// ------------------------------------------------------------ plumbing

const obs::Json& member(const obs::Json& j, const std::string& key) {
  static const obs::Json null_json;
  const obs::Json* found = j.find(key);
  return found ? *found : null_json;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/mthfx_a9_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (!dir) throw std::runtime_error("mkdtemp failed");
  return dir;
}

app::Input h2_input(double jitter_bohr, double stall_seconds = 0.0) {
  app::Input input;
  input.method = "hf";
  input.basis = "sto-3g";
  input.eps_schwarz = 1e-8;
  input.num_threads = 1;
  chem::Molecule mol;
  mol.add_atom(1, {0.0, 0.0, 0.0});
  mol.add_atom(1, {0.0, 0.0, 1.4 + jitter_bohr});
  input.molecule = mol;
  if (stall_seconds > 0.0) {
    input.fault.slow_rate = 1.0;
    input.fault.slow_factor = 1.0;
    input.fault.stall_seconds = stall_seconds;
  }
  return input;
}

// -------------------------------------------------------- supervisor
//
// Single-threaded child that forks/kills/waits server generations on
// pipe commands: "spawn" (first call: fresh; later calls: --resume on
// the same port) -> replies the bound port; "kill" -> SIGKILL the
// current generation; "wait" -> waitpid, replies the exit code.

serve::ServeOptions g_server_options;  // set before the supervisor forks

struct Supervisor {
  pid_t pid = -1;
  int cmd_w = -1;   // parent -> supervisor commands
  int reply_r = -1;  // supervisor -> parent replies

  void command(const std::string& word) const {
    const std::string line = word + "\n";
    if (::write(cmd_w, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size()))
      throw std::runtime_error("supervisor pipe broken");
  }
  std::string reply() const {
    std::string line;
    char c;
    while (::read(reply_r, &c, 1) == 1 && c != '\n') line.push_back(c);
    return line;
  }
};

pid_t spawn_server_generation(const serve::ServeOptions& options,
                              int* port_out) {
  int fds[2];
  if (pipe(fds) != 0) _exit(3);
  const pid_t pid = fork();
  if (pid < 0) _exit(3);
  if (pid == 0) {
    ::close(fds[0]);
    {
      serve::Server server(options);
      server.start();
      const std::string port = std::to_string(server.port()) + "\n";
      (void)!::write(fds[1], port.data(), port.size());
      ::close(fds[1]);
      while (!server.stop_requested())
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      const std::vector<engine::JobRecord> records = server.stop();
      for (const auto& r : records)
        if (r.state == engine::JobState::kFailed) _exit(1);
    }
    _exit(0);
  }
  ::close(fds[1]);
  std::string text;
  char c;
  while (::read(fds[0], &c, 1) == 1 && c != '\n') text.push_back(c);
  ::close(fds[0]);
  *port_out = std::atoi(text.c_str());
  return pid;
}

void supervisor_loop(int cmd_r, int reply_w) {
  serve::ServeOptions options = g_server_options;
  pid_t server = -1;
  bool spawned_once = false;
  std::string line;
  char c;
  auto reply = [&](const std::string& text) {
    const std::string out = text + "\n";
    (void)!::write(reply_w, out.data(), out.size());
  };
  while (::read(cmd_r, &c, 1) == 1) {
    if (c != '\n') {
      line.push_back(c);
      continue;
    }
    if (line == "spawn") {
      if (spawned_once) options.resume = true;  // and the pinned port
      int port = 0;
      server = spawn_server_generation(options, &port);
      options.port = port;  // later generations rebind the same port
      spawned_once = true;
      reply(std::to_string(port));
    } else if (line == "kill") {
      if (server > 0) {
        ::kill(server, SIGKILL);
        int status = 0;
        ::waitpid(server, &status, 0);
        server = -1;
      }
      reply("killed");
    } else if (line == "wait") {
      int status = 0;
      if (server > 0) ::waitpid(server, &status, 0);
      server = -1;
      reply(std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : 128));
    } else if (line == "quit") {
      break;
    }
    line.clear();
  }
  if (server > 0) ::kill(server, SIGKILL);
  _exit(0);
}

Supervisor fork_supervisor() {
  int cmd[2], rep[2];
  if (pipe(cmd) != 0 || pipe(rep) != 0)
    throw std::runtime_error("pipe failed");
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    ::close(cmd[1]);
    ::close(rep[0]);
    supervisor_loop(cmd[0], rep[1]);
    _exit(0);
  }
  ::close(cmd[0]);
  ::close(rep[1]);
  return {pid, cmd[1], rep[0]};
}

// ----------------------------------------------------- client workers

struct CampaignJob {
  std::string name;
  app::Input input;
  int priority = 0;
};

struct WorkerTally {
  std::size_t completed = 0, failed = 0, canceled = 0;
  std::size_t quota_backoffs = 0, reconnects = 0, resubmitted = 0;
  std::vector<double> latencies_ms;
  obs::Json sample_record;  // one served record for the bit-identity check
};

std::atomic<std::size_t> g_completed{0};
std::atomic<int> g_port{0};

std::unique_ptr<serve::Client> connect_with_retry(const std::string& tenant) {
  while (true) {
    try {
      auto client =
          std::make_unique<serve::Client>("127.0.0.1", g_port.load());
      client->hello(tenant);
      return client;
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
}

/// One client connection: pipeline up to `window` submits, collect
/// results oldest-first, survive quota pushback and server restarts.
WorkerTally run_worker(const std::string& tenant,
                       const std::vector<CampaignJob>& jobs,
                       std::size_t window) {
  using clock = std::chrono::steady_clock;
  struct Pending {
    std::uint64_t id;
    std::size_t job;
    clock::time_point t0;
  };
  WorkerTally tally;
  std::deque<std::size_t> todo;
  for (std::size_t i = 0; i < jobs.size(); ++i) todo.push_back(i);
  std::deque<Pending> inflight;
  auto client = connect_with_retry(tenant);

  auto reconnect = [&] {
    ++tally.reconnects;
    client = connect_with_retry(tenant);
  };

  while (!todo.empty() || !inflight.empty()) {
    try {
      // Fill the submit window.
      while (inflight.size() < window && !todo.empty()) {
        const std::size_t at = todo.front();
        const CampaignJob& job = jobs[at];
        const clock::time_point t0 = clock::now();
        const obs::Json r =
            client->submit(job.name, job.input, job.priority);
        if (!member(r, "ok").as_bool()) {
          const std::string error = member(r, "error").as_string();
          if (error.find("tenant quota") != std::string::npos) {
            // Admission pushback: let the backlog drain a little.
            ++tally.quota_backoffs;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            break;
          }
          throw std::runtime_error("submit: " + error);
        }
        todo.pop_front();
        inflight.push_back(
            {static_cast<std::uint64_t>(member(r, "id").as_int()), at, t0});
      }
      if (inflight.empty()) continue;

      const Pending head = inflight.front();
      const obs::Json r = client->result(head.id, /*timeout_s=*/5.0);
      if (!member(r, "ok").as_bool()) {
        const std::string error = member(r, "error").as_string();
        if (error.find("timeout") != std::string::npos) continue;
        if (error.find("unknown job id") != std::string::npos) {
          // The submit ack raced the crash and the journal never saw
          // the job: put it back in the queue under a fresh submit.
          inflight.pop_front();
          todo.push_front(head.job);
          ++tally.resubmitted;
          continue;
        }
        // "server stopping ..." and friends: reconnect and retry.
        reconnect();
        continue;
      }
      inflight.pop_front();
      const std::string state = member(r, "state").as_string();
      if (state == "done") {
        ++tally.completed;
        g_completed.fetch_add(1);
        tally.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(clock::now() - head.t0)
                .count());
        if (tally.sample_record.is_null() &&
            member(r, "record").find("input") != nullptr)
          tally.sample_record = member(r, "record");
      } else if (state == "canceled") {
        ++tally.canceled;
      } else {
        ++tally.failed;
      }
    } catch (const std::exception&) {
      // Broken connection (crash window). Acked jobs survive in the
      // journal; re-request them on the next generation.
      reconnect();
    }
  }
  return tally;
}

// ------------------------------------------------------------ campaign

struct CampaignConfig {
  std::size_t total_jobs;
  std::size_t clients;
  std::size_t window;
  std::size_t kill_after;  // SIGKILL the server after this many results
  std::size_t queue_capacity;
  std::size_t concurrency;
  std::size_t tenant_max_queued;
};

obs::Json run_campaign(const CampaignConfig& cfg) {
  const std::string dir = make_temp_dir();
  const std::vector<std::string> tenant_names = {"alpha", "beta", "gamma"};
  const std::vector<double> tenant_weights = {2.0, 1.0, 1.0};

  serve::ServeOptions options;
  options.port = 0;
  options.engine.concurrency = cfg.concurrency;
  options.engine.total_threads = cfg.concurrency;  // 1 thread/job: exact bits
  options.engine.queue_capacity = cfg.queue_capacity;
  options.engine.cache = true;
  options.engine.journal_path = dir + "/serve.wal";
  options.engine.store_dir = dir + "/store";
  options.engine.checkpoint_dir = dir + "/ckpt";
  for (std::size_t t = 0; t < tenant_names.size(); ++t) {
    serve::TenantConfig tenant;
    tenant.id = tenant_names[t];
    tenant.options.weight = tenant_weights[t];
    tenant.options.max_queued = cfg.tenant_max_queued;
    options.tenants.push_back(tenant);
  }

  // The job mix: unique H2 geometries (1 nm-scale jitter keeps every
  // fingerprint distinct) with every 4th submission repeating the
  // previous one — the duplicate share the cache should absorb.
  std::vector<CampaignJob> jobs(cfg.total_jobs);
  for (std::size_t i = 0; i < cfg.total_jobs; ++i) {
    const bool duplicate = (i % 4 == 3);
    const double jitter = static_cast<double>(duplicate ? i - 1 : i) * 1e-9;
    jobs[i].name = "c" + std::to_string(i);
    jobs[i].input = h2_input(jitter);
    jobs[i].priority = static_cast<int>(i % 3);
  }

  // Supervisor first (single-threaded fork), then the client fleet.
  g_server_options = options;
  Supervisor sup = fork_supervisor();
  sup.command("spawn");
  g_port.store(std::atoi(sup.reply().c_str()));
  g_completed.store(0);

  obs::Stopwatch watch;
  std::vector<WorkerTally> tallies(cfg.clients);
  std::vector<std::thread> workers;
  workers.reserve(cfg.clients);
  for (std::size_t c = 0; c < cfg.clients; ++c) {
    // Slice the campaign round-robin so every tenant runs all job kinds.
    std::vector<CampaignJob> slice;
    for (std::size_t i = c; i < jobs.size(); i += cfg.clients)
      slice.push_back(jobs[i]);
    const std::string tenant = tenant_names[c % tenant_names.size()];
    workers.emplace_back([&, c, tenant, slice = std::move(slice)] {
      tallies[c] = run_worker(tenant, slice, cfg.window);
    });
  }

  // Mid-campaign crash: SIGKILL once the results counter crosses the
  // threshold, restart the same port with resume enabled.
  double restart_seconds = 0.0;
  {
    while (g_completed.load() < cfg.kill_after)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    obs::Stopwatch restart;
    sup.command("kill");
    sup.reply();
    sup.command("spawn");
    const int port = std::atoi(sup.reply().c_str());
    g_port.store(port);
    restart_seconds = restart.seconds();
  }
  for (auto& worker : workers) worker.join();
  const double wall_seconds = watch.seconds();

  // Server-side accounting, then a clean drain.
  obs::Json stats;
  std::size_t replayed = 0;
  {
    serve::Client closer("127.0.0.1", g_port.load());
    closer.hello("alpha");
    stats = member(closer.stats(), "stats");
    replayed = static_cast<std::size_t>(member(stats, "replayed").as_int());
    closer.drain("bench complete");
  }
  sup.command("wait");
  const int server_exit = std::atoi(sup.reply().c_str());
  sup.command("quit");
  ::waitpid(sup.pid, nullptr, 0);
  ::close(sup.cmd_w);
  ::close(sup.reply_r);

  // Bit-identity: re-run each sampled record's executed input directly.
  std::size_t verified = 0, mismatched = 0;
  for (const auto& tally : tallies) {
    if (tally.sample_record.is_null()) continue;
    const app::Input as_executed =
        engine::input_from_json(member(tally.sample_record, "input"));
    const double served =
        member(member(tally.sample_record, "result"), "energy").as_double();
    const app::StructuredResult direct = app::run_structured(as_executed);
    if (std::bit_cast<std::uint64_t>(served) ==
        std::bit_cast<std::uint64_t>(direct.energy))
      ++verified;
    else
      ++mismatched;
  }

  WorkerTally total;
  std::vector<double> latencies;
  for (const auto& tally : tallies) {
    total.completed += tally.completed;
    total.failed += tally.failed;
    total.canceled += tally.canceled;
    total.quota_backoffs += tally.quota_backoffs;
    total.reconnects += tally.reconnects;
    total.resubmitted += tally.resubmitted;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  const double hits = member(member(stats, "cache"), "hits").as_double();
  const double misses = member(member(stats, "cache"), "misses").as_double();
  const double hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0.0;
  const double jobs_per_hour =
      wall_seconds > 0 ? 3600.0 * static_cast<double>(total.completed) /
                             wall_seconds
                       : 0.0;

  std::printf(
      "campaign: %zu jobs, %zu clients (window %zu), wall %.2f s "
      "(%.0f jobs/hour)\n",
      cfg.total_jobs, cfg.clients, cfg.window, wall_seconds, jobs_per_hour);
  std::printf(
      "  completed %zu, failed %zu, canceled %zu; %zu quota backoff(s), "
      "%zu reconnect(s), %zu resubmit(s)\n",
      total.completed, total.failed, total.canceled, total.quota_backoffs,
      total.reconnects, total.resubmitted);
  std::printf(
      "  crash: restart %.3f s, %zu job(s) replayed from the journal\n",
      restart_seconds, replayed);
  std::printf("  cache: %.0f hits / %.0f misses (%.1f%% hit rate)\n", hits,
              misses, 100.0 * hit_rate);
  std::printf(
      "  latency: p50 %.1f ms, p90 %.1f ms, p99 %.1f ms "
      "(crash window included)\n",
      percentile(latencies, 0.50), percentile(latencies, 0.90),
      percentile(latencies, 0.99));
  std::printf("  bit-identity: %zu sample(s) verified, %zu mismatched\n",
              verified, mismatched);
  std::printf("  server exit code %d\n", server_exit);

  obs::Json record = obs::Json::object();
  record["jobs_total"] = cfg.total_jobs;
  record["clients"] = cfg.clients;
  record["window"] = cfg.window;
  record["wall_seconds"] = wall_seconds;
  record["jobs_per_hour"] = jobs_per_hour;
  record["completed"] = total.completed;
  record["failed"] = total.failed;
  record["canceled"] = total.canceled;
  record["quota_backoffs"] = total.quota_backoffs;
  record["reconnects"] = total.reconnects;
  record["resubmitted_after_crash"] = total.resubmitted;
  record["replayed_after_resume"] = replayed;
  record["restart_seconds"] = restart_seconds;
  record["server_exit_code"] = server_exit;
  obs::Json cache = obs::Json::object();
  cache["hits"] = hits;
  cache["misses"] = misses;
  cache["hit_rate"] = hit_rate;
  record["cache"] = std::move(cache);
  obs::Json latency = obs::Json::object();
  latency["p50_ms"] = percentile(latencies, 0.50);
  latency["p90_ms"] = percentile(latencies, 0.90);
  latency["p99_ms"] = percentile(latencies, 0.99);
  record["latency_ms"] = std::move(latency);
  obs::Json identity = obs::Json::object();
  identity["verified"] = verified;
  identity["mismatched"] = mismatched;
  record["bit_identity"] = std::move(identity);
  record["tenants"] = member(stats, "tenants");
  return record;
}

// ---------------------------------------------------------- fair share

obs::Json run_fair_share_segment(std::size_t jobs_per_tenant,
                                 double stall_seconds) {
  serve::ServeOptions options;
  options.engine.concurrency = 2;
  options.engine.total_threads = 2;
  options.engine.queue_capacity = 2;  // small core: DRR decides admission
  options.engine.cache = false;
  serve::TenantConfig heavy, light;
  heavy.id = "heavy";
  heavy.options.weight = 2.0;
  heavy.options.max_queued = 4096;
  light.id = "light";
  light.options.weight = 1.0;
  light.options.max_queued = 4096;
  options.tenants = {heavy, light};
  serve::Server server(options);
  server.start();

  serve::Client heavy_client("127.0.0.1", server.port());
  serve::Client light_client("127.0.0.1", server.port());
  heavy_client.hello("heavy");
  light_client.hello("light");
  for (std::size_t i = 0; i < jobs_per_tenant; ++i) {
    heavy_client.submit("h" + std::to_string(i),
                        h2_input(static_cast<double>(i) * 1e-9,
                                 stall_seconds));
    light_client.submit("l" + std::to_string(i),
                        h2_input(1e-3 + static_cast<double>(i) * 1e-9,
                                 stall_seconds));
  }

  auto completed = [&](const obs::Json& stats, const char* tenant) {
    return member(member(member(member(stats, "stats"), "tenants"), tenant),
                  "completed")
        .as_int();
  };
  std::int64_t heavy_done = 0, light_done = 0;
  for (int poll = 0; poll < 4000; ++poll) {
    const obs::Json sample = heavy_client.stats();
    heavy_done = completed(sample, "heavy");
    light_done = completed(sample, "light");
    if (heavy_done + light_done >=
        static_cast<std::int64_t>(jobs_per_tenant))
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double ratio = light_done > 0 ? static_cast<double>(heavy_done) /
                                            static_cast<double>(light_done)
                                      : 0.0;
  const bool within = ratio > 2.0 * 0.8 && ratio < 2.0 * 1.2;
  server.stop();

  std::printf(
      "fair-share: weights 2:1 at mid-campaign -> heavy %lld / light %lld "
      "(ratio %.2f, within 20%%: %s)\n",
      static_cast<long long>(heavy_done), static_cast<long long>(light_done),
      ratio, within ? "yes" : "NO");

  obs::Json record = obs::Json::object();
  record["weight_ratio"] = 2.0;
  record["heavy_completed"] = heavy_done;
  record["light_completed"] = light_done;
  record["completion_ratio"] = ratio;
  record["within_20pct"] = within;
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  CampaignConfig cfg;
  if (smoke) {
    cfg = {/*total_jobs=*/120, /*clients=*/4, /*window=*/8,
           /*kill_after=*/30, /*queue_capacity=*/32, /*concurrency=*/2,
           /*tenant_max_queued=*/64};
  } else {
    cfg = {/*total_jobs=*/10000, /*clients=*/8, /*window=*/32,
           /*kill_after=*/3000, /*queue_capacity=*/128, /*concurrency=*/8,
           /*tenant_max_queued=*/96};
  }

  bench::print_header(
      smoke ? "A9: screening service, smoke campaign (--smoke)"
            : "A9: screening service, sustained 10k-job campaign");
  obs::Json record = obs::Json::object();
  record["mode"] = smoke ? "smoke" : "full";
  record["campaign"] = run_campaign(cfg);
  record["fair_share"] =
      run_fair_share_segment(smoke ? 30 : 60, smoke ? 0.002 : 0.004);

  // CI gate (the acceptance contract, timing-free): every job must come
  // back done, at least one replayed through the crash, every sampled
  // energy bit-identical, and the server must have drained cleanly.
  const obs::Json& campaign = record["campaign"];
  const bool ok =
      member(campaign, "completed").as_int() ==
          static_cast<std::int64_t>(cfg.total_jobs) &&
      member(campaign, "failed").as_int() == 0 &&
      member(campaign, "replayed_after_resume").as_int() >= 1 &&
      member(member(campaign, "bit_identity"), "verified").as_int() >= 1 &&
      member(member(campaign, "bit_identity"), "mismatched").as_int() == 0 &&
      member(campaign, "server_exit_code").as_int() == 0;
  if (!ok) std::printf("A9: acceptance contract FAILED\n");

  // Smoke runs gate CI but never overwrite the committed full-campaign
  // record.
  if (!smoke) bench::write_bench_json("service", record);
  return ok ? 0 : 1;
}
