// E4 — controllable accuracy: the abstract's claim that the HFX can be
// evaluated "with the necessary accuracy ... in a highly controllable
// manner". We sweep the screening threshold and report the max error of
// the exchange matrix against an unscreened build, together with the
// surviving work — all on the real kernel.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mthfx;

void screening_accuracy_table() {
  bench::print_header(
      "E4: HFX accuracy vs. screening threshold (propylene carbonate, "
      "STO-3G)");
  const auto mol = workload::propylene_carbonate();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  const auto s = ints::overlap(basis);
  const auto x = linalg::inverse_sqrt(s);
  const auto p = scf::core_guess_density(basis, mol, x);

  hfx::HfxOptions exact_opts;
  exact_opts.eps_schwarz = 1e-16;
  exact_opts.density_screening = false;
  const auto exact = hfx::FockBuilder(basis, exact_opts).exchange(p);
  const auto total_quartets = exact.stats.screening.quartets_computed;

  std::printf("%-12s %-16s %-18s %-16s %-10s\n", "eps", "max |dK|",
              "quartets computed", "fraction", "time/s");
  bench::print_rule();
  for (double eps : {1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-10, 1e-12}) {
    hfx::HfxOptions opts;
    opts.eps_schwarz = eps;
    const auto r = hfx::FockBuilder(basis, opts).exchange(p);
    const double err = linalg::max_abs(r.k - exact.k);
    std::printf("%-12.0e %-16.3e %-18llu %-16.3f %-10.4f\n", eps, err,
                static_cast<unsigned long long>(
                    r.stats.screening.quartets_computed),
                static_cast<double>(r.stats.screening.quartets_computed) /
                    static_cast<double>(total_quartets),
                r.stats.wall_seconds);
  }
  std::printf(
      "\npaper claim: the error is bounded by the threshold — accuracy is "
      "dialled in directly.\n");
}

void BM_ExchangeAtEps(benchmark::State& state) {
  const auto mol = workload::propylene_carbonate();
  const auto basis = chem::BasisSet::build(mol, "sto-3g");
  const auto s = ints::overlap(basis);
  const auto x = linalg::inverse_sqrt(s);
  const auto p = scf::core_guess_density(basis, mol, x);
  hfx::HfxOptions opts;
  opts.eps_schwarz = std::pow(10.0, -static_cast<double>(state.range(0)));
  hfx::FockBuilder builder(basis, opts);
  for (auto _ : state) {
    auto r = builder.exchange(p);
    benchmark::DoNotOptimize(r.k.data());
  }
}
BENCHMARK(BM_ExchangeAtEps)->Arg(4)->Arg(8)->Arg(12)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  screening_accuracy_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
